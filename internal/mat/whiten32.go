package mat

import (
	"fmt"
	"sync"
)

// Float32 whitened scoring path.
//
// WhitenedStack32 is the storage-halved twin of WhitenedStack: whitening
// matrices W and packed means m̃ are stored as float32, so a tile pass streams
// half the bytes through the kernel — the f64 kernel is memory-bandwidth
// bound, which makes operand width the dominant lever (DESIGN.md §15). The
// numerics are deliberately asymmetric: the triangular matvec u = W·z runs in
// float32 (that is where the bandwidth lives), while the subtract-square
// reduction q += (u − m̃)² accumulates in float64. The subtraction is exact —
// both operands are float32 values widened to float64 — so the only f32
// rounding is in u itself, and the squared terms never lose low bits to a
// narrow accumulator. The float64 path stays as the differential reference,
// exactly as logDensitySolve references the batch path in gda.
//
// Precision-rounding contract: AddFactor rounds the Cholesky factor and mean
// to float32 BEFORE deriving W and m̃ (in float64, then rounding the results).
// Because float32→float64→float32 round-trips exactly, a stack rebuilt from a
// persisted float32 payload is bit-identical to the one built at fit time —
// the same Fit/Load determinism pin the f64 stack carries via InvLower.
//
// Lane layout mirrors the f64 path at twice the width: whitenLanes32 rows per
// column-major tile (tile[r·lanes+lane] = z_lane[r]), lanes fully independent,
// padding lanes zero-filled. Per-row outputs are bit-identical whatever the
// batch composition, block grouping, or shard layout. Feature values outside
// float32 range (|z| ≳ 3.4e38) overflow to ±Inf during tile packing and
// poison only their own row, matching the NaN/Inf propagation contract of the
// f64 kernel.

// whitenLanes32 is the f32 lane-block width: 16 floats = two 8-wide vectors
// in the matvec, converted to four 4-wide float64 vectors for the reduction.
const whitenLanes32 = 16

// WhitenedStack32 is a packed stack of K float32 whitening factors and
// whitened means with a float64-accumulating kernel. Build it once per fit or
// snapshot load with AddFactor; it is immutable afterwards and safe for
// concurrent MahalanobisInto calls.
type WhitenedStack32 struct {
	d, k int
	w    []float32 // k panels of d×d row-major W, rounded to f32
	mtil []float32 // k rows of m̃, rounded to f32
}

// NewWhitenedStack32 creates an empty float32 stack for dimension-d factors.
func NewWhitenedStack32(d int) *WhitenedStack32 {
	if d < 0 {
		panic(fmt.Sprintf("mat: negative whitened dimension %d", d))
	}
	return &WhitenedStack32{d: d}
}

// Dim returns the feature dimension d.
func (s *WhitenedStack32) Dim() int { return s.d }

// Components returns the number of stacked factors.
func (s *WhitenedStack32) Components() int { return s.k }

// AddFactor appends the float32 whitening of one Cholesky factor and mean,
// returning its index in the stack. The factor and mean are rounded to
// float32 first and the whitening derived from the rounded bits, so a stack
// rebuilt from float32-persisted inputs reproduces these exact bits.
func (s *WhitenedStack32) AddFactor(c *Cholesky, mean []float64) int {
	d := s.d
	if c.Size() != d || len(mean) != d {
		panic(fmt.Sprintf("mat: whitened factor dim %d / mean %d, want %d", c.Size(), len(mean), d))
	}
	l32 := make([]float64, d*d)
	for i, v := range c.l.Data {
		l32[i] = float64(float32(v))
	}
	w := make([]float64, d*d)
	invLowerInto(w, l32, d)
	for _, v := range w {
		s.w = append(s.w, float32(v))
	}
	// m̃_j = Σ_{r≤j} W[j,r]·μ_r over the f32-rounded mean, accumulated in f64.
	for j := 0; j < d; j++ {
		sum := 0.0
		wrow := w[j*d : j*d+j+1]
		for r, wv := range wrow {
			sum += wv * float64(float32(mean[r]))
		}
		s.mtil = append(s.mtil, float32(sum))
	}
	k := s.k
	s.k++
	return k
}

// WhitenedMean returns a view of m̃_k (do not modify). Exposed for the
// persistence round-trip tests proving Load-derived whitening matches
// Fit-derived bits.
func (s *WhitenedStack32) WhitenedMean(k int) []float32 {
	return s.mtil[k*s.d : (k+1)*s.d]
}

// Factor returns a view of W_k's row-major data (do not modify).
func (s *WhitenedStack32) Factor(k int) []float32 {
	return s.w[k*s.d*s.d : (k+1)*s.d*s.d]
}

// tileScratch32 is the per-shard scratch of a float32 whitened pass: one
// column-major float32 lane tile plus the float64 per-kernel-call output.
type tileScratch32 struct {
	tile []float32
	q    [whitenLanes32]float64
}

var tileScratch32Pool = sync.Pool{New: func() any { return new(tileScratch32) }}

func getTileScratch32(d int) *tileScratch32 {
	ts := tileScratch32Pool.Get().(*tileScratch32)
	if cap(ts.tile) < d*whitenLanes32 {
		ts.tile = make([]float32, d*whitenLanes32)
	}
	ts.tile = ts.tile[:d*whitenLanes32]
	return ts
}

// whitenJob32 carries one float32 MahalanobisInto pass across the worker pool
// without allocating (fn pre-bound at pool-New time).
type whitenJob32 struct {
	s   *WhitenedStack32
	z   *Dense
	dst []float64
	fn  func(lo, hi int)
}

var whitenJob32Pool = sync.Pool{New: func() any {
	j := new(whitenJob32)
	j.fn = j.run
	return j
}}

// run processes lane blocks [lob, hib): packs each block's rows into the
// column-major float32 tile and scores it against every stacked factor.
func (j *whitenJob32) run(lob, hib int) {
	s, z, dst := j.s, j.z, j.dst
	d, k, n := s.d, s.k, z.Rows
	ts := getTileScratch32(d)
	tile := ts.tile
	for b := lob; b < hib; b++ {
		lo := b * whitenLanes32
		rows := min(whitenLanes32, n-lo)
		for lane := 0; lane < rows; lane++ {
			zrow := z.Data[(lo+lane)*d : (lo+lane+1)*d]
			for r, v := range zrow {
				tile[r*whitenLanes32+lane] = float32(v)
			}
		}
		// Zero padding lanes, same reasoning as the f64 path: the fill is what
		// makes block grouping provably irrelevant to real rows' results.
		for lane := rows; lane < whitenLanes32; lane++ {
			for r := 0; r < d; r++ {
				tile[r*whitenLanes32+lane] = 0
			}
		}
		for f := 0; f < k; f++ {
			whitenQuadTile32(&ts.q, tile, s.w[f*d*d:(f+1)*d*d], s.mtil[f*d:(f+1)*d], d)
			for lane := 0; lane < rows; lane++ {
				dst[(lo+lane)*k+f] = ts.q[lane]
			}
		}
	}
	tileScratch32Pool.Put(ts)
}

// MahalanobisInto computes dst[i·K+f] = ‖W_f·z_i − m̃_f‖² on the float32 path
// with float64 accumulation, sharding lane blocks across the kernel worker
// pool. dst must have length z.Rows·Components(). Per-row results are
// bit-identical across batch compositions, shard counts and repeated runs; a
// steady-state loop at fixed shape performs no heap allocation.
func (s *WhitenedStack32) MahalanobisInto(dst []float64, z *Dense) {
	n := z.Rows
	if n > 0 && z.Cols != s.d {
		panic(fmt.Sprintf("mat: whitened batch dim %d, want %d", z.Cols, s.d))
	}
	if len(dst) != n*s.k {
		panic(fmt.Sprintf("mat: whitened dst length %d, want %d", len(dst), n*s.k))
	}
	if n == 0 || s.k == 0 {
		return
	}
	nb := (n + whitenLanes32 - 1) / whitenLanes32
	j := whitenJob32Pool.Get().(*whitenJob32)
	j.s, j.z, j.dst = s, z, dst
	ParallelFor(nb, 1, j.fn)
	j.s, j.z, j.dst = nil, nil, nil
	whitenJob32Pool.Put(j)
}

// whitenQuadTile32Go is the portable kernel: for each of the 16 tile lanes,
// q[lane] = Σ_j (u_j − m̃_j)² with u_j = Σ_{r≤j} W[j,r]·tile[r·16+lane]. The
// matvec accumulates in float32 (matching the two 8-wide vector registers of
// the AVX2 kernel); the subtraction and squared-sum run in float64. Per-lane
// accumulation order is fixed (ascending r inside ascending j), so results
// are deterministic and independent of which rows share the tile.
func whitenQuadTile32Go(q *[whitenLanes32]float64, tile, w, mtil []float32, d int) {
	var qa [whitenLanes32]float64
	for j := 0; j < d; j++ {
		wrow := w[j*d : j*d+j+1]
		var u [whitenLanes32]float32
		for r, wv := range wrow {
			t := tile[r*whitenLanes32 : r*whitenLanes32+whitenLanes32 : r*whitenLanes32+whitenLanes32]
			for lane := range u {
				u[lane] += wv * t[lane]
			}
		}
		m := float64(mtil[j])
		for lane := range u {
			// Exact subtraction: both operands are float32 values in float64.
			t := float64(u[lane]) - m
			qa[lane] += t * t
		}
	}
	*q = qa
}
