//go:build amd64 && !noasm

package mat

// AVX2+FMA fast path for the whitened Mahalanobis kernel. The microkernel in
// whiten_amd64.s processes all 8 tile lanes as two 4-wide vectors: one
// VBROADCASTSD per W element feeds two fused multiply-adds, so the triangular
// matvec and the squared-distance reduction run entirely on vertical vector
// ops — no horizontal sums, and lane independence is structural.
//
// The fast path is gated at startup by CPUID/XGETBV feature detection (AVX2,
// FMA, and OS ymm-state support). Whichever kernel is selected is used for
// every call in the process, so outputs are bit-deterministic across runs,
// shard counts and batch compositions on a given machine. FMA contraction
// means the AVX2 kernel's bits differ from the pure-Go kernel's — the
// differential tests compare them under relative tolerance, never equality.

// whitenUseAVX selects the assembly kernel. A variable (not const) so tests
// can force the portable kernel and differentially compare the two.
var whitenUseAVX = detectAVX2FMA()

// cpuidex and xgetbv0 are implemented in whiten_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

func whitenQuadAVX(q, tile, w, mtil *float64, d int)

func whitenQuadAVX32(q *float64, tile, w, mtil *float32, d int)

// detectAVX2FMA reports whether the CPU and OS support the AVX2+FMA kernel:
// CPUID.1:ECX advertises FMA, AVX and OSXSAVE; XCR0 confirms the OS saves
// xmm+ymm state; CPUID.7.0:EBX advertises AVX2.
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const fma, osxsave, avx = 1 << 12, 1 << 27, 1 << 28
	_, _, c1, _ := cpuidex(1, 0)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 { // xmm and ymm state enabled
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// whitenQuadTile dispatches one 8-lane tile against one factor.
func whitenQuadTile(q *[whitenLanes]float64, tile, w, mtil []float64, d int) {
	if d == 0 {
		*q = [whitenLanes]float64{}
		return
	}
	if whitenUseAVX {
		whitenQuadAVX(&q[0], &tile[0], &w[0], &mtil[0], d)
		return
	}
	whitenQuadTileGo(q, tile, w, mtil, d)
}

// whitenQuadTile32 dispatches one 16-lane float32 tile against one factor.
// Gated by the same whitenUseAVX selection: the f32 kernel needs exactly the
// AVX2+FMA feature set the f64 kernel does.
func whitenQuadTile32(q *[whitenLanes32]float64, tile, w, mtil []float32, d int) {
	if d == 0 {
		*q = [whitenLanes32]float64{}
		return
	}
	if whitenUseAVX {
		whitenQuadAVX32(&q[0], &tile[0], &w[0], &mtil[0], d)
		return
	}
	whitenQuadTile32Go(q, tile, w, mtil, d)
}
