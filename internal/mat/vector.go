package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AxpyVec computes y += s·x.
func AxpyVec(y []float64, s float64, x []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += s * v
	}
}

// ScaleVec multiplies v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// SubVec returns a − b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// SumVec returns the sum of v's elements.
func SumVec(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// MeanVec returns the arithmetic mean of v (0 for empty input).
func MeanVec(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return SumVec(v) / float64(len(v))
}

// ArgMax returns the index of the largest element of v (first on ties).
// It returns -1 for an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element of v (first on ties).
// It returns -1 for an empty slice.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

// MinMax returns the smallest and largest elements of v.
// It panics on an empty slice.
func MinMax(v []float64) (min, max float64) {
	if len(v) == 0 {
		panic("mat: MinMax of empty slice")
	}
	min, max = v[0], v[0]
	for _, x := range v[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// LogSumExp returns log(Σ exp(v_i)) computed stably.
// It returns -Inf for an empty slice.
func LogSumExp(v []float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, x := range v {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Softmax writes the softmax of logits into out (stable). out may alias logits.
func Softmax(out, logits []float64) {
	if len(out) != len(logits) {
		panic(fmt.Sprintf("mat: softmax length mismatch %d vs %d", len(out), len(logits)))
	}
	if len(logits) == 0 {
		return
	}
	m := logits[0]
	for _, v := range logits[1:] {
		if v > m {
			m = v
		}
	}
	s := 0.0
	for i, v := range logits {
		e := math.Exp(v - m)
		out[i] = e
		s += e
	}
	inv := 1 / s
	for i := range out {
		out[i] *= inv
	}
}

// MeanCols returns the per-column mean of m as a length-Cols slice.
func MeanCols(m *Dense) []float64 {
	mean := make([]float64, m.Cols)
	if m.Rows == 0 {
		return mean
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}

// Covariance returns the (biased, 1/n) covariance matrix of the rows of m
// around the supplied mean, plus ridge·I on the diagonal for conditioning.
// Only the lower triangle is accumulated (the outer product is symmetric)
// and mirrored afterwards — this accumulation dominates the density
// estimator's cost at paper scale (n·d² with d = 512), so the 2× matters.
func Covariance(m *Dense, mean []float64, ridge float64) *Dense {
	d := m.Cols
	if len(mean) != d {
		panic(fmt.Sprintf("mat: covariance mean length %d != cols %d", len(mean), d))
	}
	cov := NewDense(d, d)
	if m.Rows == 0 {
		for i := 0; i < d; i++ {
			cov.Data[i*d+i] = ridge
		}
		return cov
	}
	diff := make([]float64, d)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range diff {
			diff[j] = row[j] - mean[j]
		}
		for a := 0; a < d; a++ {
			da := diff[a]
			if da == 0 {
				continue
			}
			crow := cov.Data[a*d : a*d+a+1]
			for b, db := range diff[:a+1] {
				crow[b] += da * db
			}
		}
	}
	inv := 1 / float64(m.Rows)
	for a := 0; a < d; a++ {
		for b := 0; b <= a; b++ {
			v := cov.Data[a*d+b] * inv
			cov.Data[a*d+b] = v
			cov.Data[b*d+a] = v
		}
	}
	for i := 0; i < d; i++ {
		cov.Data[i*d+i] += ridge
	}
	return cov
}
