// Package mat provides the dense linear-algebra kernel used by every other
// subsystem in this repository: row-major float64 matrices, matrix products,
// Cholesky factorization of SPD matrices, and the vector helpers the neural
// network and density estimator are built on.
//
// The package follows the convention of numeric kernels (cf. gonum): dimension
// mismatches are programmer errors and panic; numerical failures (for example
// a covariance matrix that is not positive definite) are reported as errors.
//
// Large products are sharded by output rows over a persistent worker pool
// (see parallel.go) sized by SetParallelism; the parallel path is
// bit-identical to the serial one, and the *Into variants reuse caller
// storage so steady-state training loops run allocation-free.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseData wraps data (not copied) as an r×c matrix.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// FromRows builds a matrix from row slices, copying the data.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// CopyFrom copies src into m; shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: copy shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns a × b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a × b, reusing dst's storage. Products above the
// flop threshold are sharded over the worker pool by blocks of output rows;
// results are bit-identical to the serial kernel (each output row is computed
// by exactly one shard, in the serial accumulation order).
func MulInto(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: mul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if dst == a || dst == b {
		panic("mat: MulInto dst aliases an operand")
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	if n*k*p < parallelFlopThreshold {
		mulShard(shard{dst: dst, a: a, b: b, lo: 0, hi: n})
		return
	}
	runSharded(n, shardCount(n*k*p), shard{kernel: mulShard, dst: dst, a: a, b: b})
}

// mulShard computes output rows [lo, hi) of dst = a × b. Shards large enough
// to amortize packing take the cache-blocked path; the rest run the plain ikj
// kernel (streams through b and dst rows sequentially). Both accumulate every
// output element in ascending-l order, so the choice never changes a bit of
// the result. Zero A elements are NOT skipped: 0×NaN and 0×Inf must
// contribute NaN (IEEE 754), and a data-dependent branch in the innermost
// loop costs more than the multiply it saves on dense data.
func mulShard(s shard) {
	k, p := s.a.Cols, s.b.Cols
	if rows := s.hi - s.lo; rows >= packMinRows && rows*k*p >= packFlopThreshold {
		mulShardPacked(s)
		return
	}
	a, b, dst := s.a, s.b, s.dst
	for i := s.lo; i < s.hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*p : (i+1)*p]
		for j := range drow {
			drow[j] = 0
		}
		for l := 0; l < k; l++ {
			av := arow[l]
			brow := b.Data[l*p : (l+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Packing pays only when the shard re-reads B often enough to amortize the
// copy: at least packMinRows output rows and packFlopThreshold multiply-adds.
// Vars (not consts) so the property tests can force the packed path onto
// small matrices.
var (
	packMinRows       = 8
	packFlopThreshold = 1 << 18
)

// Panel tile shape: packLB (inner l) × packJB (output j) float64s = 64 KiB,
// sized to sit in L2 while a column block of A streams past it.
const (
	packLB = 128
	packJB = 64
)

// mulShardPacked computes output rows [lo, hi) of dst = a × b with a packed,
// cache-blocked inner kernel: B is copied tile by tile (l-block × j-block)
// into a contiguous panel that is then reused across every output row of the
// shard, turning the strided B accesses of the plain kernel into sequential
// reads of a hot 64 KiB buffer.
//
// Bit-identity with the plain kernel is structural: for any output element
// (i, j), the j-tile containing j zeroes it exactly when the first l-block
// (l0 == 0) arrives and then accumulates a[i,l]*b[l,j] over l-blocks in
// ascending order and, inside each panel, over l in ascending order — the
// exact serial accumulation sequence. Blocking changes which elements are
// computed *near each other in time*, never the per-element operation order.
//
// The panel lives on the stack (not a sync.Pool): a pool entry evicted by a
// GC cycle mid-benchmark re-allocates and shows up as spurious allocs/op on a
// path the bench gate pins at zero. A stack array is structurally
// allocation-free; its one-time zeroing on frame entry is noise next to the
// ≥packFlopThreshold multiply–adds a packed shard is guaranteed to run.
func mulShardPacked(s shard) {
	a, b, dst := s.a, s.b, s.dst
	k, p := a.Cols, b.Cols
	if k == 0 {
		// No l-blocks would run, so zero dst explicitly (an empty sum is 0).
		for i := s.lo; i < s.hi; i++ {
			drow := dst.Data[i*p : (i+1)*p]
			for j := range drow {
				drow[j] = 0
			}
		}
		return
	}
	var panelBuf [packLB * packJB]float64
	panel := panelBuf[:]
	for j0 := 0; j0 < p; j0 += packJB {
		j1 := min(j0+packJB, p)
		jw := j1 - j0
		for l0 := 0; l0 < k; l0 += packLB {
			l1 := min(l0+packLB, k)
			for l := l0; l < l1; l++ {
				copy(panel[(l-l0)*jw:(l-l0+1)*jw], b.Data[l*p+j0:l*p+j1])
			}
			for i := s.lo; i < s.hi; i++ {
				arow := a.Data[i*k : (i+1)*k]
				drow := dst.Data[i*p+j0 : i*p+j1 : i*p+j1]
				if l0 == 0 {
					for j := range drow {
						drow[j] = 0
					}
				}
				for l := l0; l < l1; l++ {
					av := arow[l]
					prow := panel[(l-l0)*jw : (l-l0+1)*jw]
					for j, bv := range prow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}

// MulTA returns aᵀ × b.
func MulTA(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: mulTA shape mismatch %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Cols, b.Cols)
	MulTAInto(out, a, b)
	return out
}

// MulTAInto computes dst = aᵀ × b, reusing dst's storage, with the same
// shape/alias panics and sharding strategy as MulInto (shards own blocks of
// dst rows, i.e. columns of a).
func MulTAInto(dst, a, b *Dense) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: mulTA shape mismatch %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: mulTA dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	if dst == a || dst == b {
		panic("mat: MulTAInto dst aliases an operand")
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	if n*k*p < parallelFlopThreshold {
		mulTAShard(shard{dst: dst, a: a, b: b, lo: 0, hi: k})
		return
	}
	runSharded(k, shardCount(n*k*p), shard{kernel: mulTAShard, dst: dst, a: a, b: b})
}

// mulTAShard computes output rows [lo, hi) of dst = aᵀ × b. The outer loop
// stays over a's rows (ascending l) so every dst element accumulates its
// terms in the serial order regardless of the shard split.
func mulTAShard(s shard) {
	a, b, dst := s.a, s.b, s.dst
	n, k, p := a.Rows, a.Cols, b.Cols
	for i := s.lo; i < s.hi; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for j := range drow {
			drow[j] = 0
		}
	}
	for l := 0; l < n; l++ {
		arow := a.Data[l*k : (l+1)*k]
		brow := b.Data[l*p : (l+1)*p]
		for i := s.lo; i < s.hi; i++ {
			av := arow[i]
			orow := dst.Data[i*p : (i+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulTB returns a × bᵀ.
func MulTB(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: mulTB shape mismatch %dx%d *ᵀ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Rows)
	MulTBInto(out, a, b)
	return out
}

// MulTBInto computes dst = a × bᵀ, reusing dst's storage, with the same
// shape/alias panics and sharding strategy as MulInto.
func MulTBInto(dst, a, b *Dense) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: mulTB shape mismatch %dx%d *ᵀ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: mulTB dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if dst == a || dst == b {
		panic("mat: MulTBInto dst aliases an operand")
	}
	n, k, p := a.Rows, a.Cols, b.Rows
	if n*k*p < parallelFlopThreshold {
		mulTBShard(shard{dst: dst, a: a, b: b, lo: 0, hi: n})
		return
	}
	runSharded(n, shardCount(n*k*p), shard{kernel: mulTBShard, dst: dst, a: a, b: b})
}

// mulTBShard computes output rows [lo, hi) of dst = a × bᵀ (a dot product
// per element, so shard independence is immediate).
func mulTBShard(s shard) {
	a, b, dst := s.a, s.b, s.dst
	k := a.Cols
	for i := s.lo; i < s.hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := dst.Data[i*b.Rows : (i+1)*b.Rows]
		for j := range orow {
			orow[j] = Dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
}

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	sameShape("add", a, b)
	out := NewDense(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a − b.
func Sub(a, b *Dense) *Dense {
	sameShape("sub", a, b)
	out := NewDense(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Dense) {
	sameShape("add", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AddScaled computes a += s·b.
func AddScaled(a *Dense, s float64, b *Dense) {
	sameShape("addScaled", a, b)
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Scale multiplies every element of m by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Apply replaces each element x with f(x) in place.
func (m *Dense) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// MaxAbs returns the largest absolute element of m (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func sameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}
