package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func matricesEqual(t *testing.T, got, want *Dense, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i], tol) {
			t.Fatalf("element %d: got %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("NewDense not zeroed")
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("unexpected elements: %v", m.Data)
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 4, 4)
	matricesEqual(t, Mul(a, Identity(4)), a, 1e-12)
	matricesEqual(t, Mul(Identity(4), a), a, 1e-12)
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	matricesEqual(t, Mul(a, b), want, 1e-12)
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulIntoAliasPanics(t *testing.T) {
	a := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on aliased dst")
		}
	}()
	MulInto(a, a, Identity(2))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 3, 5)
	matricesEqual(t, a.T().T(), a, 0)
}

func TestMulTAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 6, 4)
	b := randomDense(rng, 6, 3)
	matricesEqual(t, MulTA(a, b), Mul(a.T(), b), 1e-10)
}

func TestMulTBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(rng, 5, 4)
	b := randomDense(rng, 7, 4)
	matricesEqual(t, MulTB(a, b), Mul(a, b.T()), 1e-10)
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := Add(a, b)
	matricesEqual(t, sum, FromRows([][]float64{{11, 22}, {33, 44}}), 0)
	diff := Sub(b, a)
	matricesEqual(t, diff, FromRows([][]float64{{9, 18}, {27, 36}}), 0)
	c := a.Clone()
	c.Scale(2)
	matricesEqual(t, c, FromRows([][]float64{{2, 4}, {6, 8}}), 0)
	AddScaled(c, -2, a)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("AddScaled failed")
		}
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 1}})
	AddInPlace(a, FromRows([][]float64{{2, 3}}))
	matricesEqual(t, a, FromRows([][]float64{{3, 4}}), 0)
}

func TestApplyAndMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{-3, 2}})
	a.Apply(math.Abs)
	matricesEqual(t, a, FromRows([][]float64{{3, 2}}), 0)
	if a.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %g", a.MaxAbs())
	}
	if NewDense(0, 0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]float64{{3, 4}})
	if !almostEqual(a.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("norm = %g", a.FrobeniusNorm())
	}
}

func TestRowIsViewColIsCopy(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	a.Row(0)[1] = 99
	if a.At(0, 1) != 99 {
		t.Fatal("Row should be a view")
	}
	col := a.Col(0)
	col[0] = -1
	if a.At(0, 0) != 1 {
		t.Fatal("Col should be a copy")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

// Property: matrix multiplication is associative (A·B)·C = A·(B·C).
func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		k := 1 + r.Intn(6)
		p := 1 + r.Intn(6)
		q := 1 + r.Intn(6)
		a := randomDense(r, n, k)
		b := randomDense(r, k, p)
		c := randomDense(r, p, q)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		for i := range left.Data {
			if !almostEqual(left.Data[i], right.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		k := 1 + r.Intn(5)
		p := 1 + r.Intn(5)
		a := randomDense(r, n, k)
		b := randomDense(r, k, p)
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		for i := range left.Data {
			if !almostEqual(left.Data[i], right.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
