package mat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"faction/internal/testutil"
)

// whitenFixtureStack32 builds the f64 fixture stack plus its float32 twin
// from the same factors and means, so tests can compare the two paths on
// identical inputs.
func whitenFixtureStack32(t testing.TB, d, k int, extra int, seed int64) (*WhitenedStack, *WhitenedStack32, []*Cholesky, [][]float64) {
	t.Helper()
	stack, chols, means := whitenFixtureStack(t, d, k, extra, seed)
	stack32 := NewWhitenedStack32(d)
	for f := 0; f < k; f++ {
		stack32.AddFactor(chols[f], means[f])
	}
	return stack, stack32, chols, means
}

// Property: the float32 path tracks the float64 path within the error model
// of DESIGN.md §15 — the f32 matvec contributes ~√d·ε₃₂ relative error,
// amplified by the factor's conditioning (rounding L to f32 perturbs W by
// ~κ(L)·ε₃₂). Well-conditioned fixtures sit orders of magnitude inside the
// tight bound; ridge-rescued near-singular fixtures get the κ-scaled loose
// bound. NaN classification must agree exactly.
func TestWhitenedStack32MatchesF64(t *testing.T) {
	for _, tc := range []struct {
		d, k, n, extra int
		tol            float64
	}{
		{1, 1, 1, 4, 2e-3},
		{2, 3, 9, 4, 2e-3},
		{3, 2, 8, 4, 2e-3},
		{5, 1, 7, 4, 2e-3},
		{8, 4, 16, 8, 2e-3},
		{9, 3, 33, 8, 2e-3},
		{16, 2, 40, 8, 2e-3},
		{17, 2, 31, 8, 2e-3}, // d and n both off the 16-lane grid
		{33, 3, 21, 8, 2e-3},
		{64, 4, 37, 16, 2e-3},
		// Near-singular: rank-deficient sample covariance, ridge-rescued. The
		// f32 rounding of L is magnified by κ(L) ≈ √κ(Σ) through InvLower.
		{12, 2, 19, -5, 5e-2},
		{32, 3, 25, -20, 5e-2},
	} {
		t.Run(fmt.Sprintf("d%d_k%d_n%d_extra%d", tc.d, tc.k, tc.n, tc.extra), func(t *testing.T) {
			stack, stack32, _, _ := whitenFixtureStack32(t, tc.d, tc.k, tc.extra, int64(tc.d*100+tc.n))
			rng := rand.New(rand.NewSource(int64(tc.n)))
			z := NewDense(tc.n, tc.d)
			for i := range z.Data {
				z.Data[i] = 2 * rng.NormFloat64()
			}
			q64 := make([]float64, tc.n*tc.k)
			stack.MahalanobisInto(q64, z)
			q32 := make([]float64, tc.n*tc.k)
			stack32.MahalanobisInto(q32, z)
			for i := range q64 {
				if rel := math.Abs(q32[i]-q64[i]) / (1 + math.Abs(q64[i])); rel > tc.tol || math.IsNaN(q32[i]) != math.IsNaN(q64[i]) {
					t.Fatalf("dst[%d]: f32 %v vs f64 %v (rel %g > %g)", i, q32[i], q64[i], rel, tc.tol)
				}
			}
		})
	}
}

// Property: the f32 whitening is a deterministic function of the
// float32-rounded factor and mean bits. Rebuilding the stack from factors and
// means that went through a float32 round trip — exactly what loading an f32
// snapshot payload does — reproduces W and m̃ bit for bit, because AddFactor
// rounds its inputs to float32 before deriving anything.
func TestWhitenedStack32RoundTripBits(t *testing.T) {
	for _, d := range []int{1, 3, 8, 17, 32} {
		_, stack32, chols, means := whitenFixtureStack32(t, d, 2, 6, int64(d*7+1))
		reload := NewWhitenedStack32(d)
		for f := 0; f < 2; f++ {
			lw := make([]float64, d*d)
			for i, v := range chols[f].L().Data {
				lw[i] = float64(float32(v))
			}
			ch, err := CholeskyFromFactor(NewDenseData(d, d, lw))
			if err != nil {
				t.Fatalf("d=%d factor %d: rounded factor rejected: %v", d, f, err)
			}
			mw := make([]float64, d)
			for i, v := range means[f] {
				mw[i] = float64(float32(v))
			}
			reload.AddFactor(ch, mw)
		}
		for f := 0; f < 2; f++ {
			for i, v := range stack32.Factor(f) {
				if reload.Factor(f)[i] != v {
					t.Fatalf("d=%d factor %d: W32[%d] differs after f32 round trip", d, f, i)
				}
			}
			for i, v := range stack32.WhitenedMean(f) {
				if reload.WhitenedMean(f)[i] != v {
					t.Fatalf("d=%d factor %d: m̃32[%d] differs after f32 round trip", d, f, i)
				}
			}
		}
	}
}

// Property: repeated evaluations and every worker-pool width produce the same
// bits on the f32 path. Odd batch size exercises the padded tail block.
func TestWhitenedStack32Deterministic(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	const d, k, n = 24, 3, 61
	_, stack32, _, _ := whitenFixtureStack32(t, d, k, 8, 3)
	rng := rand.New(rand.NewSource(9))
	z := NewDense(n, d)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	ref := make([]float64, n*k)
	SetParallelism(1)
	stack32.MahalanobisInto(ref, z)
	got := make([]float64, n*k)
	for _, p := range []int{1, 2, 3, 7, 16} {
		SetParallelism(p)
		for rep := 0; rep < 3; rep++ {
			for i := range got {
				got[i] = math.NaN()
			}
			stack32.MahalanobisInto(got, z)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("parallelism %d rep %d: dst[%d] = %v, serial %v", p, rep, i, got[i], ref[i])
				}
			}
		}
	}
}

// Property: a row's f32 result does not depend on which rows share its batch
// — the coalescer bit-identity contract, now at 16-lane block width.
func TestWhitenedStack32BatchComposition(t *testing.T) {
	const d, k, n = 18, 2, 37
	_, stack32, _, _ := whitenFixtureStack32(t, d, k, 6, 11)
	rng := rand.New(rand.NewSource(13))
	z := NewDense(n, d)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	whole := make([]float64, n*k)
	stack32.MahalanobisInto(whole, z)
	single := make([]float64, k)
	for i := 0; i < n; i++ {
		stack32.MahalanobisInto(single, NewDenseData(1, d, z.Row(i)))
		for f := 0; f < k; f++ {
			if single[f] != whole[i*k+f] {
				t.Fatalf("row %d factor %d: alone %v, in batch %v", i, f, single[f], whole[i*k+f])
			}
		}
	}
	sub := NewDenseData(n-5, d, z.Data[3*d:(n-2)*d])
	subDst := make([]float64, (n-5)*k)
	stack32.MahalanobisInto(subDst, sub)
	for i := range subDst {
		if subDst[i] != whole[3*k+i] {
			t.Fatalf("sub-range result %d differs from whole-batch value", i)
		}
	}
}

// Property: non-finite inputs poison exactly the rows that carry them on the
// f32 path, including values finite in float64 but beyond float32 range —
// tile packing overflows them to ±Inf, which must stay confined to their row.
func TestWhitenedStack32NonFinite(t *testing.T) {
	const d, k, n = 16, 3, 39
	_, stack32, _, _ := whitenFixtureStack32(t, d, k, 6, 17)
	rng := rand.New(rand.NewSource(19))
	clean := NewDense(n, d)
	for i := range clean.Data {
		clean.Data[i] = rng.NormFloat64()
	}
	ref := make([]float64, n*k)
	stack32.MahalanobisInto(ref, clean)

	dirty := clean.Clone()
	const nanRow, infRow, overflowRow = 4, 13, 22
	dirty.Row(nanRow)[d/2] = math.NaN()
	dirty.Row(infRow)[0] = math.Inf(1)
	dirty.Row(overflowRow)[d-1] = 1e300 // finite in f64, Inf in f32
	got := make([]float64, n*k)
	stack32.MahalanobisInto(got, dirty)
	for i := 0; i < n; i++ {
		for f := 0; f < k; f++ {
			v := got[i*k+f]
			switch i {
			case nanRow:
				if !math.IsNaN(v) {
					t.Fatalf("NaN row factor %d: got %v, want NaN", f, v)
				}
			case infRow, overflowRow:
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					t.Fatalf("row %d factor %d: got finite %v, want non-finite", i, f, v)
				}
			default:
				if v != ref[i*k+f] {
					t.Fatalf("clean row %d factor %d perturbed by non-finite neighbors: %v vs %v",
						i, f, v, ref[i*k+f])
				}
			}
		}
	}
}

// Degenerate shapes: mirrors the f64 edge suite.
func TestWhitenedStack32Edges(t *testing.T) {
	_, stack32, _, _ := whitenFixtureStack32(t, 6, 2, 4, 23)
	stack32.MahalanobisInto(nil, NewDense(0, 6)) // n == 0: no-op

	empty := NewWhitenedStack32(6) // k == 0
	empty.MahalanobisInto(nil, NewDense(4, 6))

	zero := NewWhitenedStack32(0) // d == 0: every distance is an empty sum
	ch, err := NewCholesky(NewDense(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	zero.AddFactor(ch, nil)
	dst := []float64{math.NaN(), math.NaN(), math.NaN()}
	zero.MahalanobisInto(dst, NewDense(3, 0))
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("d=0 distance[%d] = %v, want 0", i, v)
		}
	}

	mustPanicWhiten(t, "dim mismatch", func() {
		stack32.MahalanobisInto(make([]float64, 2*2), NewDense(2, 5))
	})
	mustPanicWhiten(t, "dst length", func() {
		stack32.MahalanobisInto(make([]float64, 3), NewDense(2, 6))
	})
	mustPanicWhiten(t, "factor dim", func() {
		c, _, err := NewCholeskyRidge(Covariance(NewDense(9, 4), make([]float64, 4), 1e-3), 1e-3, 5)
		if err != nil {
			t.Fatal(err)
		}
		stack32.AddFactor(c, make([]float64, 4))
	})
}

// The f32 whitened pass is allocation-free at steady state, same as the f64
// pass — the property the gda f32 scoring path's bench-gate pins inherit.
func TestWhitenedStack32SteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; alloc counts not representative")
	}
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	_, stack32, _, _ := whitenFixtureStack32(t, 32, 4, 8, 29)
	rng := rand.New(rand.NewSource(31))
	z := NewDense(40, 32)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	dst := make([]float64, 40*4)
	loop := func() { stack32.MahalanobisInto(dst, z) }
	for i := 0; i < 10; i++ {
		loop()
	}
	if n := testing.AllocsPerRun(50, loop); n != 0 {
		t.Fatalf("steady-state f32 MahalanobisInto allocates %.1f allocs/op, want 0", n)
	}
}

// BenchmarkWhitenMahalanobis32 is the f32 quadratic-form pass at the same
// shape as the f64 benchmark: 512 rows × 64 dims against a 4-factor stack.
func BenchmarkWhitenMahalanobis32(b *testing.B) {
	_, stack32, _, _ := whitenFixtureStack32(b, 64, 4, 16, 37)
	rng := rand.New(rand.NewSource(41))
	z := NewDense(512, 64)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	dst := make([]float64, 512*4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stack32.MahalanobisInto(dst, z)
	}
}
