package mat

import (
	"math/rand"
	"testing"
	"time"
)

// Scheduling properties of the worker pool: at parallelism 1 the "parallel"
// entry points must BE the serial path, not merely match it — zero shards
// handed to pool workers, identical code, and therefore identical cost.

// At parallelism 1 no shard may cross the pool channel: runSharded inlines,
// and shardCount caps marginal products to one shard. The dispatch counter
// proves the code path, so the no-regression guarantee does not rest on
// noisy timing.
func TestNoPoolDispatchAtParallelism1(t *testing.T) {
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	rng := rand.New(rand.NewSource(61))
	x := randDense(rng, 96, 96)
	y := randDense(rng, 96, 96)
	dst := NewDense(96, 96)
	base := PoolDispatches()
	MulInto(dst, x, y)
	MulTAInto(dst, x, y)
	MulTBInto(dst, x, y)
	ParallelFor(1024, 1, func(lo, hi int) {})
	stack, _, _ := whitenFixtureStack(t, 16, 2, 8, 67)
	z := randDense(rng, 40, 16)
	stack.MahalanobisInto(make([]float64, 40*2), z)
	if got := PoolDispatches(); got != base {
		t.Fatalf("parallelism 1 dispatched %d shard(s) to pool workers, want 0", got-base)
	}
}

// shardCount must never produce shards below the handoff break-even: a
// product barely over the flop threshold stays single-shard even when the
// pool is wide, and the cap never exceeds the parallelism knob.
func TestShardCountFlopCap(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(16)
	if got := shardCount(parallelFlopThreshold); got != 1 {
		t.Fatalf("threshold flops: shardCount = %d, want 1", got)
	}
	if got := shardCount(3 * parallelFlopThreshold); got != 3 {
		t.Fatalf("3x threshold: shardCount = %d, want 3", got)
	}
	if got := shardCount(1 << 30); got != 16 {
		t.Fatalf("huge product: shardCount = %d, want parallelism 16", got)
	}
	SetParallelism(1)
	if got := shardCount(1 << 30); got != 1 {
		t.Fatalf("parallelism 1: shardCount = %d, want 1", got)
	}
}

// Benchmark-style assertion that the default ("parallel") path does not lose
// to the forced-serial path at parallelism 1. Since TestNoPoolDispatch proves
// the code paths are identical, only measurement noise separates them; the
// generous factor keeps the assertion robust while still catching a real
// scheduling regression (which historically showed up as >20% overhead).
func TestParallelNeverLosesAtOneCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	old := Parallelism()
	defer SetParallelism(old)
	rng := rand.New(rand.NewSource(71))
	x := randDense(rng, 256, 256)
	y := randDense(rng, 256, 256)
	dst := NewDense(256, 256)
	measure := func(p, iters int) time.Duration {
		SetParallelism(p)
		defer SetParallelism(old)
		MulInto(dst, x, y) // warm
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				MulInto(dst, x, y)
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}
	const iters = 8
	serial := measure(1, iters)
	// "Parallel" at width 1: the default path with the knob at 1, i.e. what a
	// 1-CPU machine runs when nothing forces serial.
	parallel := measure(1, iters)
	if parallel > serial*3/2 {
		t.Fatalf("parallel path %v vs serial %v at parallelism 1: >1.5x, scheduling overhead regressed",
			parallel, serial)
	}
}
