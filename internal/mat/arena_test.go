package mat

import (
	"math/rand"
	"testing"

	"faction/internal/testutil"
)

func TestArenaGetShapesAndIndependence(t *testing.T) {
	a := GetArena()
	defer a.Release()
	m1 := a.Get(3, 5)
	m2 := a.Get(3, 5)
	if m1.Rows != 3 || m1.Cols != 5 || len(m1.Data) != 15 {
		t.Fatalf("Get(3,5) shape = %dx%d len %d", m1.Rows, m1.Cols, len(m1.Data))
	}
	if m1 == m2 {
		t.Fatal("two Gets from one arena returned the same matrix")
	}
	// Contents are arbitrary but writable and independent.
	for i := range m1.Data {
		m1.Data[i] = 1
		m2.Data[i] = 2
	}
	for i := range m1.Data {
		if m1.Data[i] != 1 || m2.Data[i] != 2 {
			t.Fatalf("matrices share storage at %d", i)
		}
	}
}

func TestArenaEmptyAndPanics(t *testing.T) {
	a := GetArena()
	if m := a.Get(0, 7); m.Rows != 0 || m.Cols != 7 || len(m.Data) != 0 {
		t.Fatalf("Get(0,7) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	mustPanic(t, "negative dims", func() { a.Get(-1, 2) })
	a.Release()
	mustPanic(t, "Get after Release", func() { a.Get(2, 2) })
	mustPanic(t, "double Release", func() { a.Release() })
}

// Pooled matrices must be fully usable as MulInto destinations even though
// their contents are arbitrary at checkout.
func TestArenaMatricesWorkWithKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randDense(rng, 6, 9)
	y := randDense(rng, 9, 4)
	want := Mul(x, y)
	// Dirty the pool: take a matrix, scribble on it, release it.
	a := GetArena()
	d := a.Get(6, 4)
	for i := range d.Data {
		d.Data[i] = 1e30
	}
	a.Release()
	// A fresh checkout of the same shape may reuse that dirty backing.
	a2 := GetArena()
	defer a2.Release()
	dst := a2.Get(6, 4)
	MulInto(dst, x, y)
	requireSameData(t, "arena dst", want, dst)
}

// The whole point: a steady-state checkout/compute/release loop at fixed
// shapes allocates nothing.
func TestArenaSteadyStateZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; alloc counts not representative")
	}
	x := NewDense(4, 16)
	y := NewDense(16, 32)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	for i := range y.Data {
		y.Data[i] = float64(i) * 0.5
	}
	loop := func() {
		a := GetArena()
		h := a.Get(4, 32)
		MulInto(h, x, y)
		_ = a.Get(4, 2)
		a.Release()
	}
	for i := 0; i < 10; i++ {
		loop() // warm the size-class pools
	}
	if n := testing.AllocsPerRun(100, loop); n != 0 {
		t.Fatalf("arena steady state allocates %.1f allocs/op, want 0", n)
	}
}
