//go:build amd64 && !noasm

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func whitenQuadAVX(q, tile, w, mtil *float64, d int)
//
// For the 8 interleaved lanes of tile (tile[r*8+lane] = z_lane[r]):
//
//	q[lane] = sum_{j<d} t_j^2,  t_j = (sum_{r<=j} w[j*d+r]*tile[r*8+lane]) - mtil[j]
//
// w is row-major lower triangular (only r <= j is read), so the inner loop
// runs exactly j+1 broadcasts per output row j — the triangular matvec at
// half the FLOPs of a dense product. Each broadcast feeds two 4-wide FMAs
// (lanes 0-3 in Y0, lanes 4-7 in Y1); the reduction subtracts the broadcast
// whitened mean and accumulates t*t into Y4/Y5. All operations are vertical,
// so lanes never mix: a row's q depends only on its own tile column.
//
// Caller guarantees d >= 1.
TEXT ·whitenQuadAVX(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), R10
	MOVQ tile+8(FP), SI
	MOVQ w+16(FP), DI
	MOVQ mtil+24(FP), R8
	MOVQ d+32(FP), R9

	VXORPD Y4, Y4, Y4        // q, lanes 0-3
	VXORPD Y5, Y5, Y5        // q, lanes 4-7
	XORQ   R11, R11          // j
	MOVQ   DI, R12           // &w[j*d]

loopj:
	VXORPD Y0, Y0, Y0        // u, lanes 0-3
	VXORPD Y1, Y1, Y1        // u, lanes 4-7
	MOVQ   SI, R13           // &tile[r*8]
	XORQ   R14, R14          // r

loopr:
	VBROADCASTSD (R12)(R14*8), Y2
	VFMADD231PD  (R13), Y2, Y0
	VFMADD231PD  32(R13), Y2, Y1
	ADDQ         $64, R13
	INCQ         R14
	CMPQ         R14, R11
	JLE          loopr       // r <= j: lower triangle only

	VBROADCASTSD (R8)(R11*8), Y3
	VSUBPD       Y3, Y0, Y2  // t = u - mtil[j], lanes 0-3
	VFMADD231PD  Y2, Y2, Y4  // q += t*t
	VSUBPD       Y3, Y1, Y2  // lanes 4-7
	VFMADD231PD  Y2, Y2, Y5

	LEAQ (R12)(R9*8), R12    // next w row
	INCQ R11
	CMPQ R11, R9
	JL   loopj

	VMOVUPD Y4, (R10)
	VMOVUPD Y5, 32(R10)
	VZEROUPPER
	RET
