//go:build amd64 && !noasm

package mat

import (
	"math"
	"math/rand"
	"testing"
)

// Differential test of the f32 AVX2+FMA microkernel against the portable Go
// kernel on the same tiles. Both accumulate the matvec in float32 and the
// reduction in float64, but FMA contracts the f32 multiply-adds, so bits
// differ; agreement is asserted under a relative tolerance sized to the f32
// accumulation error (~√d·ε₃₂), far looser than the f64 kernel's 1e-12.
func TestWhitenQuadAVX32MatchesGo(t *testing.T) {
	if !whitenUseAVX {
		t.Skip("no AVX2+FMA on this machine")
	}
	rng := rand.New(rand.NewSource(43))
	for _, d := range []int{1, 2, 3, 7, 8, 15, 24, 64, 65} {
		tile := make([]float32, d*whitenLanes32)
		for i := range tile {
			tile[i] = float32(2 * rng.NormFloat64())
		}
		w := make([]float32, d*d)
		mtil := make([]float32, d)
		for j := 0; j < d; j++ {
			for r := 0; r <= j; r++ {
				w[j*d+r] = float32(rng.NormFloat64())
			}
			mtil[j] = float32(rng.NormFloat64())
		}
		var qAsm, qGo [whitenLanes32]float64
		whitenQuadAVX32(&qAsm[0], &tile[0], &w[0], &mtil[0], d)
		whitenQuadTile32Go(&qGo, tile, w, mtil, d)
		for lane := 0; lane < whitenLanes32; lane++ {
			rel := math.Abs(qAsm[lane]-qGo[lane]) / (1 + math.Abs(qGo[lane]))
			if rel > 1e-4 || math.IsNaN(qAsm[lane]) != math.IsNaN(qGo[lane]) {
				t.Fatalf("d=%d lane %d: asm %v vs go %v (rel %g)", d, lane, qAsm[lane], qGo[lane], rel)
			}
		}
		// The assembly kernel must be deterministic call to call.
		var again [whitenLanes32]float64
		whitenQuadAVX32(&again[0], &tile[0], &w[0], &mtil[0], d)
		if again != qAsm {
			t.Fatalf("d=%d: f32 asm kernel not deterministic across calls", d)
		}
	}
}

// Forcing the portable f32 kernel through the dispatch flag must keep
// MahalanobisInto within tolerance of the AVX path on a full batch.
func TestMahalanobisInto32AVXvsGo(t *testing.T) {
	if !whitenUseAVX {
		t.Skip("no AVX2+FMA on this machine")
	}
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	const d, k, n = 40, 3, 53
	_, stack32, _, _ := whitenFixtureStack32(t, d, k, 10, 47)
	rng := rand.New(rand.NewSource(53))
	z := NewDense(n, d)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	avx := make([]float64, n*k)
	stack32.MahalanobisInto(avx, z)
	whitenUseAVX = false
	defer func() { whitenUseAVX = true }()
	pure := make([]float64, n*k)
	stack32.MahalanobisInto(pure, z)
	for i := range avx {
		rel := math.Abs(avx[i]-pure[i]) / (1 + math.Abs(pure[i]))
		if rel > 1e-4 {
			t.Fatalf("dst[%d]: avx %v vs go %v (rel %g)", i, avx[i], pure[i], rel)
		}
	}
}
