//go:build !amd64 || noasm

package mat

// whitenQuadTile on non-amd64 platforms (or under -tags noasm, the CI leg
// that keeps the fallbacks differentially tested on AVX2 runners) always runs
// the portable lane-unrolled kernel.
func whitenQuadTile(q *[whitenLanes]float64, tile, w, mtil []float64, d int) {
	if d == 0 {
		*q = [whitenLanes]float64{}
		return
	}
	whitenQuadTileGo(q, tile, w, mtil, d)
}

// whitenQuadTile32 likewise always runs the portable float32 kernel with
// float64 accumulation.
func whitenQuadTile32(q *[whitenLanes32]float64, tile, w, mtil []float32, d int) {
	if d == 0 {
		*q = [whitenLanes32]float64{}
		return
	}
	whitenQuadTile32Go(q, tile, w, mtil, d)
}
