//go:build !amd64

package mat

// whitenQuadTile on non-amd64 platforms always runs the portable
// lane-unrolled kernel.
func whitenQuadTile(q *[whitenLanes]float64, tile, w, mtil []float64, d int) {
	if d == 0 {
		*q = [whitenLanes]float64{}
		return
	}
	whitenQuadTileGo(q, tile, w, mtil, d)
}
