package mat

import (
	"fmt"
	"sync"
)

// Whitened batch Mahalanobis scoring.
//
// For an SPD covariance Σ = L·Lᵀ the Mahalanobis distance of z from mean μ is
//
//	(z−μ)ᵀ Σ⁻¹ (z−μ) = ‖L⁻¹(z−μ)‖² = ‖Wz − m̃‖²,  W = L⁻¹,  m̃ = Wμ.
//
// Per-row triangular solves (Cholesky.MahalanobisScratch) serialize on the
// forward-substitution dependency chain and pay a division per element. The
// whitened form has neither: W and m̃ are computed once per factor, and a
// batch of rows against a stack of K factors becomes K packed triangular
// matmuls fused with a per-row squared-distance reduction — the shape the
// packed kernel eats. A WhitenedStack holds those precomputed factors;
// MahalanobisInto evaluates a whole batch against all of them.
//
// The batch is processed in lane blocks: whitenLanes rows are transposed into
// a column-major tile (tile[r·lanes+lane] = z_lane[r]) so the inner kernel
// reads one W element and feeds all lanes — on amd64 with AVX2+FMA a single
// broadcast and two fused multiply-adds per W element (whiten_amd64.s), and a
// lane-unrolled pure-Go kernel everywhere else. Lanes are fully independent:
// a row's result depends only on its own tile column, never on which rows
// share the block (padding lanes are zero-filled), so per-row outputs are
// bit-identical whatever the batch composition, block grouping, or shard
// layout — the property the serving layer's batching bit-identity and the
// determinism pins rest on. Results are NOT bit-identical to the solve path
// (different accumulation order of the same products); callers that need the
// solve bits keep using MahalanobisScratch.

// whitenLanes is the lane-block width: rows scored together by one kernel
// call. 8 doubles = two 4-wide vectors, matching the AVX2 microkernel.
const whitenLanes = 8

// InvLower returns W = L⁻¹ for the lower-triangular Cholesky factor L, itself
// lower triangular, computed by deterministic column-wise forward
// substitution. The same factor bits always produce the same inverse bits, so
// whitening derived from a persisted factor matches the one derived at fit
// time exactly.
func (c *Cholesky) InvLower() *Dense {
	n := c.n
	w := NewDense(n, n)
	invLowerInto(w.Data, c.l.Data, n)
	return w
}

// invLowerInto fills w (n×n row major) with the inverse of the
// lower-triangular factor l by column-wise forward substitution. Shared by
// the f64 and f32 stacks so both derive from identical substitution order.
func invLowerInto(w, l []float64, n int) {
	for col := 0; col < n; col++ {
		// Solve L·x = e_col; x fills W[col:, col].
		for i := col; i < n; i++ {
			sum := 0.0
			if i == col {
				sum = 1.0
			}
			for k := col; k < i; k++ {
				sum -= l[i*n+k] * w[k*n+col]
			}
			w[i*n+col] = sum / l[i*n+i]
		}
	}
}

// WhitenedStack is a packed stack of K whitening factors (W_k = L_k⁻¹, row
// major, lower triangular) and whitened means m̃_k = W_k·μ_k, ready for batch
// Mahalanobis evaluation against every factor at once. Build it once per fit
// (or snapshot load) with AddFactor; it is immutable afterwards and safe for
// concurrent MahalanobisInto calls.
type WhitenedStack struct {
	d, k int
	w    []float64 // k panels of d×d row-major W
	mtil []float64 // k rows of m̃
}

// NewWhitenedStack creates an empty stack for dimension-d factors.
func NewWhitenedStack(d int) *WhitenedStack {
	if d < 0 {
		panic(fmt.Sprintf("mat: negative whitened dimension %d", d))
	}
	return &WhitenedStack{d: d}
}

// Dim returns the feature dimension d.
func (s *WhitenedStack) Dim() int { return s.d }

// Components returns the number of stacked factors.
func (s *WhitenedStack) Components() int { return s.k }

// AddFactor appends the whitening of one Cholesky factor and mean, returning
// its index in the stack. The derivation is deterministic in the factor bits.
func (s *WhitenedStack) AddFactor(c *Cholesky, mean []float64) int {
	d := s.d
	if c.Size() != d || len(mean) != d {
		panic(fmt.Sprintf("mat: whitened factor dim %d / mean %d, want %d", c.Size(), len(mean), d))
	}
	w := c.InvLower()
	s.w = append(s.w, w.Data...)
	// m̃_j = Σ_{r≤j} W[j,r]·μ_r (W is lower triangular).
	for j := 0; j < d; j++ {
		sum := 0.0
		wrow := w.Data[j*d : j*d+j+1]
		for r, wv := range wrow {
			sum += wv * mean[r]
		}
		s.mtil = append(s.mtil, sum)
	}
	k := s.k
	s.k++
	return k
}

// WhitenedMean returns a view of m̃_k (do not modify). Exposed for the
// persistence round-trip tests proving Load-derived whitening matches
// Fit-derived bits.
func (s *WhitenedStack) WhitenedMean(k int) []float64 {
	return s.mtil[k*s.d : (k+1)*s.d]
}

// Factor returns a view of W_k's row-major data (do not modify).
func (s *WhitenedStack) Factor(k int) []float64 {
	return s.w[k*s.d*s.d : (k+1)*s.d*s.d]
}

// tileScratch is the per-shard scratch of a whitened pass: one column-major
// lane tile plus the per-kernel-call output. Pooled so concurrent shards and
// concurrent callers run allocation-free at steady state.
type tileScratch struct {
	tile []float64
	q    [whitenLanes]float64
}

var tileScratchPool = sync.Pool{New: func() any { return new(tileScratch) }}

func getTileScratch(d int) *tileScratch {
	ts := tileScratchPool.Get().(*tileScratch)
	if cap(ts.tile) < d*whitenLanes {
		ts.tile = make([]float64, d*whitenLanes)
	}
	ts.tile = ts.tile[:d*whitenLanes]
	return ts
}

// whitenJob carries one MahalanobisInto pass across the worker pool without
// allocating (fn pre-bound at pool-New time, like gda's score jobs).
type whitenJob struct {
	s   *WhitenedStack
	z   *Dense
	dst []float64
	fn  func(lo, hi int)
}

var whitenJobPool = sync.Pool{New: func() any {
	j := new(whitenJob)
	j.fn = j.run
	return j
}}

// run processes lane blocks [lob, hib): packs each block's rows into the
// column-major tile and scores it against every stacked factor.
func (j *whitenJob) run(lob, hib int) {
	s, z, dst := j.s, j.z, j.dst
	d, k, n := s.d, s.k, z.Rows
	ts := getTileScratch(d)
	tile := ts.tile
	for b := lob; b < hib; b++ {
		lo := b * whitenLanes
		rows := min(whitenLanes, n-lo)
		for lane := 0; lane < rows; lane++ {
			zrow := z.Data[(lo+lane)*d : (lo+lane+1)*d]
			for r, v := range zrow {
				tile[r*whitenLanes+lane] = v
			}
		}
		// Zero padding lanes: garbage from a previous block must not feed the
		// kernel (lane independence keeps it out of real rows' results, but
		// Inf/NaN garbage could fault-free still produce spurious FP flags and
		// the zero fill is what makes block grouping provably irrelevant).
		for lane := rows; lane < whitenLanes; lane++ {
			for r := 0; r < d; r++ {
				tile[r*whitenLanes+lane] = 0
			}
		}
		for f := 0; f < k; f++ {
			whitenQuadTile(&ts.q, tile, s.w[f*d*d:(f+1)*d*d], s.mtil[f*d:(f+1)*d], d)
			for lane := 0; lane < rows; lane++ {
				dst[(lo+lane)*k+f] = ts.q[lane]
			}
		}
	}
	tileScratchPool.Put(ts)
}

// MahalanobisInto computes dst[i·K+f] = ‖W_f·z_i − m̃_f‖², the Mahalanobis
// distance of every row i to every stacked factor f, sharding lane blocks
// across the kernel worker pool. dst must have length z.Rows·Components().
// Per-row results are bit-identical across batch compositions, shard counts
// and repeated runs (see the package comment above); a steady-state loop at
// fixed shape performs no heap allocation.
func (s *WhitenedStack) MahalanobisInto(dst []float64, z *Dense) {
	n := z.Rows
	if n > 0 && z.Cols != s.d {
		panic(fmt.Sprintf("mat: whitened batch dim %d, want %d", z.Cols, s.d))
	}
	if len(dst) != n*s.k {
		panic(fmt.Sprintf("mat: whitened dst length %d, want %d", len(dst), n*s.k))
	}
	if n == 0 || s.k == 0 {
		return
	}
	nb := (n + whitenLanes - 1) / whitenLanes
	j := whitenJobPool.Get().(*whitenJob)
	j.s, j.z, j.dst = s, z, dst
	ParallelFor(nb, 1, j.fn)
	j.s, j.z, j.dst = nil, nil, nil
	whitenJobPool.Put(j)
}

// whitenQuadTileGo is the portable lane-unrolled kernel: for each of the 8
// tile lanes, q[lane] = Σ_j (u_j − m̃_j)² with u_j = Σ_{r≤j} W[j,r]·tile[r·8+lane].
// Eight independent accumulator chains keep the scalar FMA pipeline full; the
// 4-wide halves mirror the two vector registers of the AVX2 kernel. Per-lane
// accumulation order is fixed (ascending r inside ascending j), so results
// are deterministic and independent of which rows share the tile.
func whitenQuadTileGo(q *[whitenLanes]float64, tile, w, mtil []float64, d int) {
	var q0, q1, q2, q3, q4, q5, q6, q7 float64
	for j := 0; j < d; j++ {
		wrow := w[j*d : j*d+j+1]
		var u0, u1, u2, u3, u4, u5, u6, u7 float64
		for r, wv := range wrow {
			t := tile[r*whitenLanes : r*whitenLanes+whitenLanes : r*whitenLanes+whitenLanes]
			u0 += wv * t[0]
			u1 += wv * t[1]
			u2 += wv * t[2]
			u3 += wv * t[3]
			u4 += wv * t[4]
			u5 += wv * t[5]
			u6 += wv * t[6]
			u7 += wv * t[7]
		}
		m := mtil[j]
		u0 -= m
		u1 -= m
		u2 -= m
		u3 -= m
		u4 -= m
		u5 -= m
		u6 -= m
		u7 -= m
		q0 += u0 * u0
		q1 += u1 * u1
		q2 += u2 * u2
		q3 += u3 * u3
		q4 += u4 * u4
		q5 += u5 * u5
		q6 += u6 * u6
		q7 += u7 * u7
	}
	q[0], q[1], q[2], q[3] = q0, q1, q2, q3
	q[4], q[5], q[6], q[7] = q4, q5, q6, q7
}
