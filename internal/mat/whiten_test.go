package mat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"faction/internal/testutil"
)

// whitenFixtureStack builds a K-factor whitened stack from random SPD
// covariances (sampled with d+extra rows; extra < 0 yields a rank-deficient
// sample covariance that only a ridge rescue makes factorizable — the
// near-singular regime). Returns the stack plus the raw factors and means for
// solve-path reference evaluation.
func whitenFixtureStack(t testing.TB, d, k int, extra int, seed int64) (*WhitenedStack, []*Cholesky, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	stack := NewWhitenedStack(d)
	chols := make([]*Cholesky, k)
	means := make([][]float64, k)
	for f := 0; f < k; f++ {
		rows := d + extra
		if rows < 1 {
			rows = 1
		}
		sample := NewDense(rows, d)
		for i := range sample.Data {
			sample.Data[i] = rng.NormFloat64()
		}
		cov := Covariance(sample, MeanCols(sample), 1e-9)
		ch, _, err := NewCholeskyRidge(cov, 1e-9, 20)
		if err != nil {
			t.Fatalf("factor %d (d=%d extra=%d): %v", f, d, extra, err)
		}
		mean := make([]float64, d)
		for j := range mean {
			mean[j] = 3 * rng.NormFloat64()
		}
		stack.AddFactor(ch, mean)
		chols[f] = ch
		means[f] = mean
	}
	return stack, chols, means
}

// Property: W = L⁻¹ really inverts the factor (W·L = I) and is lower
// triangular with exact zeros above the diagonal.
func TestInvLowerIsInverse(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 8, 17, 64} {
		stack, chols, _ := whitenFixtureStack(t, d, 1, 5, int64(d))
		w := NewDenseData(d, d, append([]float64(nil), stack.Factor(0)...))
		prod := Mul(w, chols[0].L())
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				want := 0.0
				if i == j {
					want = 1.0
				}
				if diff := math.Abs(prod.Data[i*d+j] - want); diff > 1e-9 {
					t.Fatalf("d=%d: (W·L)[%d,%d] = %v, want %v", d, i, j, prod.Data[i*d+j], want)
				}
				if j > i && w.Data[i*d+j] != 0 {
					t.Fatalf("d=%d: W[%d,%d] = %v above diagonal, want exact 0", d, i, j, w.Data[i*d+j])
				}
			}
		}
	}
}

// Property: the whitened batch kernel agrees with the per-row triangular
// solve (Cholesky.MahalanobisScratch) under relative tolerance, across
// dimensions (including non-multiples of the lane width), batch sizes
// (including tail blocks), factor counts, and ridge-rescued near-singular
// covariances. Equality of bits is NOT expected: the two paths accumulate
// the same products in different orders.
func TestMahalanobisIntoMatchesSolve(t *testing.T) {
	for _, tc := range []struct {
		d, k, n, extra int
	}{
		{1, 1, 1, 4},
		{2, 3, 9, 4},
		{3, 2, 8, 4},
		{5, 1, 7, 4},
		{8, 4, 16, 8},
		{9, 3, 33, 8},
		{16, 2, 40, 8},
		{33, 3, 21, 8},
		{64, 4, 37, 16},
		// Near-singular: rank-deficient sample covariance, ridge-rescued.
		{12, 2, 19, -5},
		{32, 3, 25, -20},
	} {
		t.Run(fmt.Sprintf("d%d_k%d_n%d_extra%d", tc.d, tc.k, tc.n, tc.extra), func(t *testing.T) {
			stack, chols, means := whitenFixtureStack(t, tc.d, tc.k, tc.extra, int64(tc.d*100+tc.n))
			rng := rand.New(rand.NewSource(int64(tc.n)))
			z := NewDense(tc.n, tc.d)
			for i := range z.Data {
				z.Data[i] = 2 * rng.NormFloat64()
			}
			dst := make([]float64, tc.n*tc.k)
			stack.MahalanobisInto(dst, z)
			scratch := make([]float64, tc.d)
			for i := 0; i < tc.n; i++ {
				for f := 0; f < tc.k; f++ {
					want := chols[f].MahalanobisScratch(z.Row(i), means[f], scratch)
					got := dst[i*tc.k+f]
					if rel := math.Abs(got-want) / (1 + math.Abs(want)); rel > 1e-9 {
						t.Fatalf("row %d factor %d: whitened %v vs solve %v (rel %g)", i, f, got, want, rel)
					}
				}
			}
		})
	}
}

// Property: repeated evaluations and every worker-pool width produce the
// same bits — lane blocks are row-independent and each is computed by
// exactly one shard in a fixed accumulation order. Uses an odd batch size so
// the tail block (padded lanes) is exercised.
func TestMahalanobisIntoDeterministic(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	const d, k, n = 24, 3, 61
	stack, _, _ := whitenFixtureStack(t, d, k, 8, 3)
	rng := rand.New(rand.NewSource(9))
	z := NewDense(n, d)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	ref := make([]float64, n*k)
	SetParallelism(1)
	stack.MahalanobisInto(ref, z)
	got := make([]float64, n*k)
	for _, p := range []int{1, 2, 3, 7, 16} {
		SetParallelism(p)
		for rep := 0; rep < 3; rep++ {
			for i := range got {
				got[i] = math.NaN()
			}
			stack.MahalanobisInto(got, z)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("parallelism %d rep %d: dst[%d] = %v, serial %v", p, rep, i, got[i], ref[i])
				}
			}
		}
	}
}

// Property: a row's result does not depend on which rows share its batch —
// scoring each row alone gives the same bits as scoring them all together
// (the batching bit-identity the serving layer's request coalescer relies
// on). Exercises rows landing in every lane position of their block.
func TestMahalanobisIntoBatchComposition(t *testing.T) {
	const d, k, n = 18, 2, 29
	stack, _, _ := whitenFixtureStack(t, d, k, 6, 11)
	rng := rand.New(rand.NewSource(13))
	z := NewDense(n, d)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	whole := make([]float64, n*k)
	stack.MahalanobisInto(whole, z)
	single := make([]float64, k)
	for i := 0; i < n; i++ {
		stack.MahalanobisInto(single, NewDenseData(1, d, z.Row(i)))
		for f := 0; f < k; f++ {
			if single[f] != whole[i*k+f] {
				t.Fatalf("row %d factor %d: alone %v, in batch %v", i, f, single[f], whole[i*k+f])
			}
		}
	}
	// Also an arbitrary sub-range: rows shifted to different lane offsets.
	sub := NewDenseData(n-5, d, z.Data[3*d:(n-2)*d])
	subDst := make([]float64, (n-5)*k)
	stack.MahalanobisInto(subDst, sub)
	for i := range subDst {
		if subDst[i] != whole[3*k+i] {
			t.Fatalf("sub-range result %d differs from whole-batch value", i)
		}
	}
}

// Property: non-finite inputs poison exactly the rows that carry them. A NaN
// anywhere in a row makes that row's distances NaN; an Inf makes them
// non-finite; every clean row keeps bits identical to an all-clean batch.
func TestMahalanobisIntoNonFinite(t *testing.T) {
	const d, k, n = 16, 3, 21
	stack, _, _ := whitenFixtureStack(t, d, k, 6, 17)
	rng := rand.New(rand.NewSource(19))
	clean := NewDense(n, d)
	for i := range clean.Data {
		clean.Data[i] = rng.NormFloat64()
	}
	ref := make([]float64, n*k)
	stack.MahalanobisInto(ref, clean)

	dirty := clean.Clone()
	const nanRow, infRow = 4, 13
	dirty.Row(nanRow)[d/2] = math.NaN()
	dirty.Row(infRow)[0] = math.Inf(1)
	got := make([]float64, n*k)
	stack.MahalanobisInto(got, dirty)
	for i := 0; i < n; i++ {
		for f := 0; f < k; f++ {
			v := got[i*k+f]
			switch i {
			case nanRow:
				if !math.IsNaN(v) {
					t.Fatalf("NaN row factor %d: got %v, want NaN", f, v)
				}
			case infRow:
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					t.Fatalf("Inf row factor %d: got finite %v", f, v)
				}
			default:
				if v != ref[i*k+f] {
					t.Fatalf("clean row %d factor %d perturbed by non-finite neighbors: %v vs %v",
						i, f, v, ref[i*k+f])
				}
			}
		}
	}
}

// Degenerate shapes: empty batches, empty stacks and zero-dimensional
// factors must be well-defined no-ops (or all-zero distances for d=0).
func TestMahalanobisIntoEdges(t *testing.T) {
	stack, _, _ := whitenFixtureStack(t, 6, 2, 4, 23)
	stack.MahalanobisInto(nil, NewDense(0, 6)) // n == 0: no-op

	empty := NewWhitenedStack(6) // k == 0
	empty.MahalanobisInto(nil, NewDense(4, 6))

	zero := NewWhitenedStack(0) // d == 0: every distance is an empty sum
	ch, err := NewCholesky(NewDense(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	zero.AddFactor(ch, nil)
	dst := []float64{math.NaN(), math.NaN(), math.NaN()}
	zero.MahalanobisInto(dst, NewDense(3, 0))
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("d=0 distance[%d] = %v, want 0", i, v)
		}
	}

	mustPanicWhiten(t, "dim mismatch", func() {
		stack.MahalanobisInto(make([]float64, 2*2), NewDense(2, 5))
	})
	mustPanicWhiten(t, "dst length", func() {
		stack.MahalanobisInto(make([]float64, 3), NewDense(2, 6))
	})
	mustPanicWhiten(t, "factor dim", func() {
		c, _, err := NewCholeskyRidge(Covariance(NewDense(9, 4), make([]float64, 4), 1e-3), 1e-3, 5)
		if err != nil {
			t.Fatal(err)
		}
		stack.AddFactor(c, make([]float64, 4))
	})
}

func mustPanicWhiten(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// The whitened pass is allocation-free at steady state — the property the
// pooled gda scoring paths (and their bench-gate pins) inherit.
func TestMahalanobisIntoSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; alloc counts not representative")
	}
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	stack, _, _ := whitenFixtureStack(t, 32, 4, 8, 29)
	rng := rand.New(rand.NewSource(31))
	z := NewDense(40, 32)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	dst := make([]float64, 40*4)
	loop := func() { stack.MahalanobisInto(dst, z) }
	for i := 0; i < 10; i++ {
		loop()
	}
	if n := testing.AllocsPerRun(50, loop); n != 0 {
		t.Fatalf("steady-state MahalanobisInto allocates %.1f allocs/op, want 0", n)
	}
}

// BenchmarkWhitenMahalanobis is the quadratic-form pass under GDA batch
// scoring: 512 rows × 64 dims against a 4-factor stack.
func BenchmarkWhitenMahalanobis(b *testing.B) {
	stack, _, _ := whitenFixtureStack(b, 64, 4, 16, 37)
	rng := rand.New(rand.NewSource(41))
	z := NewDense(512, 64)
	for i := range z.Data {
		z.Data[i] = rng.NormFloat64()
	}
	dst := make([]float64, 512*4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stack.MahalanobisInto(dst, z)
	}
}
