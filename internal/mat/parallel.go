package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernel's parallelism: matrix products (and batch loops built on
// ParallelFor) are sharded over a persistent package-level worker pool.
//
// Design constraints, in priority order:
//
//  1. Bit-identical results. Shards own disjoint output rows and perform the
//     same per-row accumulation order as the serial kernel, so the parallel
//     and serial paths produce identical floats (tested property in
//     parallel_test.go).
//  2. Allocation-free steady state. Shard descriptors are plain structs sent
//     by value over a channel, shard kernels are top-level functions (no
//     closure captures), and WaitGroups are pooled — a parallel MulInto does
//     not allocate.
//  3. No oversubscription, no deadlock. The pool holds at most
//     Parallelism()−1 workers; a submitting goroutine always runs one shard
//     inline and falls back to inline execution when no worker is free, so
//     concurrent callers (e.g. parallel protocol runs in experiments)
//     self-throttle instead of stacking goroutines.

// parallelism is the target shard count, defaulting to GOMAXPROCS(0) (not
// NumCPU: GOMAXPROCS respects container CPU quotas and taskset masks).
var parallelism atomic.Int32

func init() { parallelism.Store(int32(runtime.GOMAXPROCS(0))) }

// Parallelism returns the kernel's current target parallelism. It is the
// shared default for every worker knob in this repository (see
// experiments.Options.Workers).
func Parallelism() int { return int(parallelism.Load()) }

// SetParallelism sets the kernel's target parallelism. Values ≤ 0 reset to
// runtime.GOMAXPROCS(0). 1 forces the serial path. Safe for concurrent use;
// in-flight operations keep the value they started with.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	parallelism.Store(int32(n))
}

// parallelFlopThreshold is the minimum number of multiply–adds before a
// product is sharded: below it the goroutine handoff costs more than the
// arithmetic saves. A var (not const) so the boundary is testable.
var parallelFlopThreshold = 1 << 16

// shardCount caps the target shard count so that every shard carries at
// least parallelFlopThreshold multiply–adds: sharding a product into pieces
// below the handoff break-even just moves work behind channel sends. At
// parallelism 1 the result is always 1, so the "parallel" entry points run
// the very same inline code path as the serial ones — parallel can never
// lose to serial there (asserted by TestParallelNeverLosesAtOneCPU).
func shardCount(flops int) int {
	p := Parallelism()
	if maxShards := flops / parallelFlopThreshold; p > maxShards {
		p = maxShards
	}
	if p < 1 {
		p = 1
	}
	return p
}

// poolDispatches counts shards actually handed to pool workers (not run
// inline). Observability for the scheduling tests: at parallelism 1 the
// counter must not move, proving serial and parallel calls share one code
// path rather than merely producing equal results.
var poolDispatches atomic.Uint64

// PoolDispatches returns the cumulative number of shards executed by pool
// workers since process start.
func PoolDispatches() uint64 { return poolDispatches.Load() }

// shard is one unit of pool work: rows [Lo, Hi) of an operation. Matmul
// kernels read the operands from the descriptor itself so that no closure is
// allocated; ParallelFor carries a closure in fn for generic callers.
type shard struct {
	kernel    func(s shard) // top-level function, never a closure
	fn        func(lo, hi int)
	dst, a, b *Dense
	lo, hi    int
	wg        *sync.WaitGroup
}

var (
	shardCh   = make(chan shard)
	workersMu sync.Mutex
	workers   int
)

// ensureWorkers grows the resident worker set to n goroutines. Workers are
// never torn down; idle ones block on shardCh and cost only their stacks.
func ensureWorkers(n int) {
	if n <= 0 {
		return
	}
	workersMu.Lock()
	for workers < n {
		workers++
		go func() {
			for s := range shardCh {
				s.kernel(s)
				s.wg.Done()
			}
		}()
	}
	workersMu.Unlock()
}

var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// runSharded splits [0, n) into at most p contiguous blocks and runs tmpl's
// kernel on each. The caller's goroutine always executes the first block
// itself; remaining blocks are offered to the pool and run inline when every
// worker is busy (opportunistic handoff — an unbuffered send only succeeds
// when a worker is already parked in receive).
func runSharded(n, p int, tmpl shard) {
	if p > n {
		p = n
	}
	if p <= 1 {
		tmpl.lo, tmpl.hi = 0, n
		tmpl.kernel(tmpl)
		return
	}
	ensureWorkers(p - 1)
	wg := wgPool.Get().(*sync.WaitGroup)
	tmpl.wg = wg
	chunk := (n + p - 1) / p
	for lo := chunk; lo < n; lo += chunk {
		s := tmpl
		s.lo, s.hi = lo, min(lo+chunk, n)
		wg.Add(1)
		select {
		case shardCh <- s:
			poolDispatches.Add(1)
		default:
			s.kernel(s)
			wg.Done()
		}
	}
	tmpl.lo, tmpl.hi = 0, chunk
	tmpl.kernel(tmpl)
	wg.Wait()
	wgPool.Put(wg)
}

// parallelForKernel adapts a ParallelFor closure to the shard interface.
func parallelForKernel(s shard) { s.fn(s.lo, s.hi) }

// ParallelFor runs fn over the disjoint cover of [0, n) on the kernel's
// worker pool, serially when n < 2·minGrain or the parallelism knob is 1.
// fn must be safe to call concurrently on disjoint ranges. Used by gda to
// shard per-sample density scoring across the same pool as the matmuls.
func ParallelFor(n, minGrain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Parallelism()
	if minGrain > 0 && p > n/minGrain {
		p = n / minGrain
	}
	if p <= 1 {
		fn(0, n)
		return
	}
	runSharded(n, p, shard{kernel: parallelForKernel, fn: fn})
}
