//go:build amd64 && !noasm

#include "textflag.h"

// func whitenQuadAVX32(q *float64, tile, w, mtil *float32, d int)
//
// Float32 twin of whitenQuadAVX at twice the lane width: for the 16
// interleaved float32 lanes of tile (tile[r*16+lane] = z_lane[r]):
//
//	q[lane] = sum_{j<d} t_j^2,  t_j = float64(u_j) - float64(mtil[j]),
//	u_j = sum_{r<=j} w[j*d+r]*tile[r*16+lane]   (float32 accumulation)
//
// The triangular matvec runs entirely in float32 — one VBROADCASTSS feeds two
// 8-wide FMAs per W element, half the bytes and half the vector ops of the
// f64 kernel for the same 16 rows. The reduction then widens: u and the
// whitened mean are converted to float64 (the subtraction is exact, both
// operands being float32 values) and t*t accumulates into four 4-wide float64
// registers. All operations are vertical, so lanes never mix: a row's q
// depends only on its own tile column. One tile row is 64 bytes either way
// (8×f64 or 16×f32), so the stride logic matches the f64 kernel.
//
// Caller guarantees d >= 1.
TEXT ·whitenQuadAVX32(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), R10
	MOVQ tile+8(FP), SI
	MOVQ w+16(FP), DI
	MOVQ mtil+24(FP), R8
	MOVQ d+32(FP), R9

	VXORPD Y4, Y4, Y4        // q, lanes 0-3   (float64)
	VXORPD Y5, Y5, Y5        // q, lanes 4-7
	VXORPD Y6, Y6, Y6        // q, lanes 8-11
	VXORPD Y7, Y7, Y7        // q, lanes 12-15
	XORQ   R11, R11          // j
	MOVQ   DI, R12           // &w[j*d]

loopj:
	VXORPS Y0, Y0, Y0        // u, lanes 0-7   (float32)
	VXORPS Y1, Y1, Y1        // u, lanes 8-15
	MOVQ   SI, R13           // &tile[r*16]
	XORQ   R14, R14          // r

loopr:
	VBROADCASTSS (R12)(R14*4), Y2
	VFMADD231PS  (R13), Y2, Y0
	VFMADD231PS  32(R13), Y2, Y1
	ADDQ         $64, R13
	INCQ         R14
	CMPQ         R14, R11
	JLE          loopr       // r <= j: lower triangle only

	// Widen u and m̃ to float64 and accumulate (u - m̃)² per 4-lane quarter.
	VBROADCASTSS (R8)(R11*4), X3
	VCVTPS2PD    X3, Y3      // m̃[j] broadcast, float64
	VCVTPS2PD    X0, Y8      // lanes 0-3
	VSUBPD       Y3, Y8, Y8
	VFMADD231PD  Y8, Y8, Y4
	VEXTRACTF128 $1, Y0, X8
	VCVTPS2PD    X8, Y8      // lanes 4-7
	VSUBPD       Y3, Y8, Y8
	VFMADD231PD  Y8, Y8, Y5
	VCVTPS2PD    X1, Y8      // lanes 8-11
	VSUBPD       Y3, Y8, Y8
	VFMADD231PD  Y8, Y8, Y6
	VEXTRACTF128 $1, Y1, X8
	VCVTPS2PD    X8, Y8      // lanes 12-15
	VSUBPD       Y3, Y8, Y8
	VFMADD231PD  Y8, Y8, Y7

	LEAQ (R12)(R9*4), R12    // next w row (float32 elements)
	INCQ R11
	CMPQ R11, R9
	JL   loopj

	VMOVUPD Y4, (R10)
	VMOVUPD Y5, 32(R10)
	VMOVUPD Y6, 64(R10)
	VMOVUPD Y7, 96(R10)
	VZEROUPPER
	RET
