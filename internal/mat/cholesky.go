package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a matrix
// that is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	n int
	l *Dense // lower triangular, upper part zero
}

// NewCholesky factorizes the SPD matrix a. The input is not modified.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: cholesky of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			lrow := l.Data[i*n : i*n+j]
			jrow := l.Data[j*n : j*n+j]
			for k, v := range lrow {
				sum -= v * jrow[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, i, sum)
				}
				l.Data[i*n+i] = math.Sqrt(sum)
			} else {
				l.Data[i*n+j] = sum / l.Data[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// NewCholeskyRidge factorizes a, retrying with geometrically growing diagonal
// ridge when a is numerically indefinite (as happens for near-degenerate
// covariance estimates from few samples). It returns the factorization and
// the ridge that was finally added (0 when none was needed).
func NewCholeskyRidge(a *Dense, initialRidge float64, maxAttempts int) (*Cholesky, float64, error) {
	ch, err := NewCholesky(a)
	if err == nil {
		return ch, 0, nil
	}
	ridge := initialRidge
	if ridge <= 0 {
		ridge = 1e-8
	}
	work := a.Clone()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		work.CopyFrom(a)
		for i := 0; i < a.Rows; i++ {
			work.Data[i*a.Cols+i] += ridge
		}
		if ch, err = NewCholesky(work); err == nil {
			return ch, ridge, nil
		}
		ridge *= 10
	}
	return nil, ridge, fmt.Errorf("mat: cholesky failed after %d ridge attempts: %w", maxAttempts, err)
}

// CholeskyFromFactor reconstructs a Cholesky from a previously computed
// lower-triangular factor L (as returned by L()). It validates shape,
// strictly positive diagonal and zero upper triangle. Used by persistence.
func CholeskyFromFactor(l *Dense) (*Cholesky, error) {
	if l.Rows != l.Cols {
		return nil, fmt.Errorf("mat: factor is %dx%d, want square", l.Rows, l.Cols)
	}
	n := l.Rows
	for i := 0; i < n; i++ {
		d := l.Data[i*n+i]
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("%w: factor diagonal %d = %g", ErrNotSPD, i, d)
		}
		for j := i + 1; j < n; j++ {
			if l.Data[i*n+j] != 0 {
				return nil, fmt.Errorf("mat: factor has nonzero upper element (%d,%d)", i, j)
			}
		}
	}
	return &Cholesky{n: n, l: l.Clone()}, nil
}

// Size returns the dimension of the factorized matrix.
func (c *Cholesky) Size() int { return c.n }

// L returns the lower-triangular factor (shared storage; do not modify).
func (c *Cholesky) L() *Dense { return c.l }

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.Data[i*c.n+i])
	}
	return 2 * s
}

// SolveVec solves A·x = b and returns x.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	dst := make([]float64, c.n)
	c.SolveVecInto(dst, b)
	return dst
}

// SolveVecInto solves A·x = b, writing x into dst without allocating. dst may
// alias b (the solve is in place: the forward substitution consumes b[i]
// exactly when it writes position i, and the backward substitution only reads
// positions it has not yet overwritten).
func (c *Cholesky) SolveVecInto(dst, b []float64) {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("mat: solve length %d/%d != %d", len(dst), len(b), c.n))
	}
	// Forward substitution: L·y = b, y stored in dst.
	for i := 0; i < c.n; i++ {
		sum := b[i]
		lrow := c.l.Data[i*c.n : i*c.n+i]
		for k, v := range lrow {
			sum -= v * dst[k]
		}
		dst[i] = sum / c.l.Data[i*c.n+i]
	}
	// Backward substitution: Lᵀ·x = y, in place (x[i] depends on y[i] and
	// x[k] for k > i only, all of which are already final).
	for i := c.n - 1; i >= 0; i-- {
		sum := dst[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.l.Data[k*c.n+i] * dst[k]
		}
		dst[i] = sum / c.l.Data[i*c.n+i]
	}
}

// Mahalanobis returns (x−mean)ᵀ A⁻¹ (x−mean) using the factorization of A.
// It is computed as ‖L⁻¹(x−mean)‖² via a single forward substitution.
func (c *Cholesky) Mahalanobis(x, mean []float64) float64 {
	return c.MahalanobisScratch(x, mean, make([]float64, c.n))
}

// MahalanobisScratch is Mahalanobis with a caller-provided length-n scratch
// buffer, so batch scoring loops (gda.ScoreBatch) run allocation-free. The
// scratch contents are overwritten; it must not alias x or mean.
func (c *Cholesky) MahalanobisScratch(x, mean, scratch []float64) float64 {
	if len(x) != c.n || len(mean) != c.n {
		panic(fmt.Sprintf("mat: mahalanobis length %d/%d != %d", len(x), len(mean), c.n))
	}
	if len(scratch) != c.n {
		panic(fmt.Sprintf("mat: mahalanobis scratch length %d != %d", len(scratch), c.n))
	}
	y := scratch
	for i := 0; i < c.n; i++ {
		sum := x[i] - mean[i]
		lrow := c.l.Data[i*c.n : i*c.n+i]
		for k, v := range lrow {
			sum -= v * y[k]
		}
		y[i] = sum / c.l.Data[i*c.n+i]
	}
	return Dot(y, y)
}

// Reconstruct returns L·Lᵀ, the matrix that was factorized (up to roundoff
// and any ridge added). Useful for testing.
func (c *Cholesky) Reconstruct() *Dense {
	return MulTB(c.l, c.l)
}
