package active

import (
	"math"
)

// Coreset is the k-Center-Greedy core-set strategy (Sener & Savarese, ICLR
// 2018): each pick is the pool sample farthest (in feature space) from every
// already-covered point — labeled-set members and earlier picks alike. It is
// a pure diversity baseline: no uncertainty, no fairness. Not part of the
// paper's comparison; included as an additional reference point for the
// extension experiments.
type Coreset struct{}

// Name implements Strategy.
func (Coreset) Name() string { return "Coreset" }

// SelectBatch implements Strategy.
func (Coreset) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	pool := ctx.PoolFeatures()
	// minDist[i] = distance from pool sample i to its nearest covered point.
	minDist := make([]float64, pool.Rows)
	if ctx.Labeled.Len() == 0 {
		for i := range minDist {
			minDist[i] = math.Inf(1)
		}
	} else {
		labeled := ctx.LabeledFeatures()
		for i := 0; i < pool.Rows; i++ {
			best := math.Inf(1)
			row := pool.Row(i)
			for j := 0; j < labeled.Rows; j++ {
				if d := sqDistVec(row, labeled.Row(j)); d < best {
					best = d
				}
			}
			minDist[i] = best
		}
	}
	picks := make([]int, 0, a)
	taken := make([]bool, pool.Rows)
	for len(picks) < a {
		best, bestD := -1, math.Inf(-1)
		for i, d := range minDist {
			if taken[i] {
				continue
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			break
		}
		picks = append(picks, best)
		taken[best] = true
		// The new pick covers its neighbourhood.
		chosen := pool.Row(best)
		for i := 0; i < pool.Rows; i++ {
			if taken[i] {
				continue
			}
			if d := sqDistVec(pool.Row(i), chosen); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return picks
}

func sqDistVec(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
