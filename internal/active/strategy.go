// Package active defines the query-strategy interface of the active online
// learning protocol and implements the paper's seven comparison baselines
// (Section V-A2): Random, Entropy-AL, margin sampling, QuFUR, DDU, FAL,
// FAL-CUR and Decoupled (D-FA²L). FACTION itself implements the same
// interface in the internal/faction package, so the online runner treats all
// methods uniformly.
package active

import (
	"math"
	"math/rand"
	"sort"

	"faction/internal/data"
	"faction/internal/mat"
	"faction/internal/nn"
)

// Context is everything a strategy may consult when choosing samples:
// the current model, the labeled pool accumulated so far and the remaining
// unlabeled pool of the current task. Derived quantities (probabilities,
// features) are computed lazily and cached, since several strategies need
// the same ones.
type Context struct {
	Model   *nn.Classifier
	Labeled *data.Dataset
	Pool    *data.Dataset
	Rng     *rand.Rand

	poolX     *mat.Dense
	poolProbs *mat.Dense
	poolFeats *mat.Dense
	labFeats  *mat.Dense
}

// PoolMatrix returns the unlabeled pool's feature matrix (cached).
func (c *Context) PoolMatrix() *mat.Dense {
	if c.poolX == nil {
		c.poolX = c.Pool.Matrix()
	}
	return c.poolX
}

// PoolProbs returns the model's class probabilities on the pool (cached).
func (c *Context) PoolProbs() *mat.Dense {
	if c.poolProbs == nil {
		c.ensurePool()
	}
	return c.poolProbs
}

// PoolFeatures returns z = r(x, θ) for the pool (cached).
func (c *Context) PoolFeatures() *mat.Dense {
	if c.poolFeats == nil {
		c.ensurePool()
	}
	return c.poolFeats
}

func (c *Context) ensurePool() {
	logits, feats := c.Model.LogitsAndFeatures(c.PoolMatrix())
	probs := mat.NewDense(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		mat.Softmax(probs.Row(i), logits.Row(i))
	}
	c.poolProbs = probs
	c.poolFeats = feats
}

// LabeledFeatures returns the representation of the labeled pool (cached).
func (c *Context) LabeledFeatures() *mat.Dense {
	if c.labFeats == nil {
		c.labFeats = c.Model.Features(c.Labeled.Matrix())
	}
	return c.labFeats
}

// Strategy selects up to a pool indices per acquisition round (Algorithm 1's
// inner loop runs one SelectBatch per acquisition batch of size A).
type Strategy interface {
	Name() string
	SelectBatch(ctx *Context, a int) []int
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// topK returns the indices of the k largest scores (all indices when
// k ≥ len). Ties broken by index for determinism.
func topK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// clampA bounds the acquisition size by the pool size.
func clampA(ctx *Context, a int) int {
	if n := ctx.Pool.Len(); a > n {
		return n
	}
	return a
}

// Random selects samples uniformly at random — the naive baseline.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "Random" }

// SelectBatch implements Strategy.
func (Random) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	perm := ctx.Rng.Perm(ctx.Pool.Len())
	return perm[:a]
}

// EntropyAL is classical uncertainty sampling by prediction entropy
// (Settles 2009): query the a samples the model is least sure about.
type EntropyAL struct{}

// Name implements Strategy.
func (EntropyAL) Name() string { return "Entropy-AL" }

// SelectBatch implements Strategy.
func (EntropyAL) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	probs := ctx.PoolProbs()
	scores := make([]float64, probs.Rows)
	for i := range scores {
		scores[i] = Entropy(probs.Row(i))
	}
	return topK(scores, a)
}

// Margin is margin sampling (Scheffer et al. 2001): query samples with the
// smallest gap between the top two class probabilities.
type Margin struct{}

// Name implements Strategy.
func (Margin) Name() string { return "Margin" }

// SelectBatch implements Strategy.
func (Margin) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	probs := ctx.PoolProbs()
	scores := make([]float64, probs.Rows)
	for i := range scores {
		row := probs.Row(i)
		best, second := -1.0, -1.0
		for _, v := range row {
			if v > best {
				best, second = v, best
			} else if v > second {
				second = v
			}
		}
		scores[i] = -(best - second) // smaller margin ⇒ larger score
	}
	return topK(scores, a)
}
