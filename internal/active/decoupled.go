package active

import (
	"math/rand"

	"faction/internal/data"
	"faction/internal/nn"
)

// Decoupled implements D-FA²L ("Fairness-Aware Active Learning for Decoupled
// Model", Cao & Lan, IJCNN 2022): two lightweight group-specific models are
// fitted on the labeled samples of each sensitive group, and pool samples on
// which the decoupled models disagree most are the most promising queries —
// disagreement signals group-dependent decision boundaries, i.e. potential
// unfairness. Samples whose disagreement exceeds Threshold are preferred;
// the batch is completed by descending disagreement.
type Decoupled struct {
	// Threshold is the disagreement cutoff α (swept over {0.1 … 0.8} in
	// Fig. 3). Default 0.2.
	Threshold float64
	// Epochs trains the group models per selection round. Default 5.
	Epochs int
	// Hidden is the group models' hidden width. Default 16 (they are
	// deliberately lighter than the main model — the paper notes Decoupled
	// is the cheapest fairness-aware baseline, Fig. 5a).
	Hidden int
	// Seed derives group-model initializations.
	Seed int64
}

// Name implements Strategy.
func (Decoupled) Name() string { return "Decoupled" }

// SelectBatch implements Strategy.
func (d Decoupled) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	epochs := d.Epochs
	if epochs <= 0 {
		epochs = 5
	}
	hidden := d.Hidden
	if hidden <= 0 {
		hidden = 16
	}
	thr := d.Threshold
	if thr <= 0 {
		thr = 0.2
	}

	var posIdx, negIdx []int
	for i, smp := range ctx.Labeled.Samples {
		if smp.S == 1 {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	// Not enough per-group data to decouple: fall back to margin sampling.
	if len(posIdx) < 4 || len(negIdx) < 4 {
		return Margin{}.SelectBatch(ctx, a)
	}
	mPos := trainGroupModel(ctx.Labeled.Subset(posIdx), hidden, epochs, d.Seed*1000+1)
	mNeg := trainGroupModel(ctx.Labeled.Subset(negIdx), hidden, epochs, d.Seed*1000+2)

	poolX := ctx.PoolMatrix()
	pPos := mPos.Probs(poolX)
	pNeg := mNeg.Probs(poolX)
	disagreement := make([]float64, poolX.Rows)
	for i := range disagreement {
		disagreement[i] = absf(pPos.At(i, 1) - pNeg.At(i, 1))
	}

	// Above-threshold samples form a strict priority tier, ordered by
	// disagreement within each tier.
	boosted := make([]float64, len(disagreement))
	for i, v := range disagreement {
		boosted[i] = v
		if v >= thr {
			boosted[i] += 1
		}
	}
	return topK(boosted, a)
}

func trainGroupModel(group *data.Dataset, hidden, epochs int, seed int64) *nn.Classifier {
	m := nn.NewClassifier(nn.Config{
		InputDim:   group.Dim,
		NumClasses: group.Classes,
		Hidden:     []int{hidden},
		Seed:       seed,
	})
	rng := rand.New(rand.NewSource(seed + 7))
	m.Train(group.Matrix(), group.Labels(), nil, nn.NewAdam(0.01), nn.TrainOpts{
		Epochs:    epochs,
		BatchSize: 32,
	}, rng)
	return m
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
