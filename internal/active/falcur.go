package active

import (
	"math"
	"sort"

	"faction/internal/cluster"
)

// FALCUR implements FAL-CUR (Fajri et al., Expert Systems with Applications
// 2024): fair clustering of the unlabeled pool followed by per-cluster
// selection of the samples with the best combination of uncertainty and
// representativeness. Fair clustering uses the fairlet-based FairKMeans of
// the cluster package so every cluster mixes both sensitive groups; the
// acquisition batch is spread over clusters proportionally to their size.
type FALCUR struct {
	// K is the number of clusters (default 8, clamped to the pool size).
	K int
	// Beta weighs uncertainty against representativeness (the paper's β,
	// swept over {0.3 … 0.7} in Fig. 3). Default 0.5.
	Beta float64
}

// Name implements Strategy.
func (FALCUR) Name() string { return "FAL-CUR" }

// SelectBatch implements Strategy.
func (f FALCUR) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	k := f.K
	if k <= 0 {
		k = 8
	}
	beta := f.Beta
	if beta <= 0 {
		beta = 0.5
	}
	feats := ctx.PoolFeatures()
	res := cluster.FairKMeans(ctx.Rng, feats, ctx.Pool.Sensitive(), k, 30)

	probs := ctx.PoolProbs()
	uncertainty := make([]float64, probs.Rows)
	for i := range uncertainty {
		uncertainty[i] = Entropy(probs.Row(i))
	}
	uncertainty = NormalizeScores(uncertainty)

	// Representativeness: negated distance to the cluster center, normalized.
	repr := make([]float64, feats.Rows)
	for i := 0; i < feats.Rows; i++ {
		c := res.Assign[i]
		d := 0.0
		row := feats.Row(i)
		ctr := res.Centers.Row(c)
		for j := range row {
			diff := row[j] - ctr[j]
			d += diff * diff
		}
		repr[i] = -math.Sqrt(d)
	}
	repr = NormalizeScores(repr)

	score := make([]float64, feats.Rows)
	for i := range score {
		score[i] = beta*uncertainty[i] + (1-beta)*repr[i]
	}

	// Proportional allocation of the batch across clusters (largest first),
	// then best-scored samples within each cluster.
	counts := res.Counts()
	type clusterInfo struct{ id, count int }
	infos := make([]clusterInfo, 0, res.K)
	for c, n := range counts {
		if n > 0 {
			infos = append(infos, clusterInfo{c, n})
		}
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].count != infos[j].count {
			return infos[i].count > infos[j].count
		}
		return infos[i].id < infos[j].id
	})
	total := feats.Rows
	picked := make([]int, 0, a)
	taken := make([]bool, total)
	for _, info := range infos {
		if len(picked) >= a {
			break
		}
		quota := int(math.Ceil(float64(a) * float64(info.count) / float64(total)))
		if rem := a - len(picked); quota > rem {
			quota = rem
		}
		members := res.Members(info.id)
		sort.Slice(members, func(x, y int) bool {
			if score[members[x]] != score[members[y]] {
				return score[members[x]] > score[members[y]]
			}
			return members[x] < members[y]
		})
		for _, m := range members {
			if quota == 0 {
				break
			}
			picked = append(picked, m)
			taken[m] = true
			quota--
		}
	}
	// Fill any remaining slots by global score.
	if len(picked) < a {
		for _, i := range topK(score, total) {
			if len(picked) >= a {
				break
			}
			if !taken[i] {
				picked = append(picked, i)
				taken[i] = true
			}
		}
	}
	return picked
}
