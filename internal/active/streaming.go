package active

import (
	"fmt"
	"math/rand"

	"faction/internal/rngutil"
)

// StreamSelector implements the single-sample-arrival variant sketched in
// Section IV-D: instead of normalizing scores within a batch, the min–max
// range is "updated incrementally with all gathered scores", and each
// arriving sample is accepted or rejected immediately by a Bernoulli trial
// with p = min(α·(1 − normalize(u)), 1).
//
// The selector enforces a hard budget: once Remaining reaches zero every
// offer is rejected. Early samples — seen before the score range is
// informative — are handled by a warm-up period during which the acceptance
// probability is α·0.5 (the uninformed prior).
type StreamSelector struct {
	alpha    float64
	budget   int
	warmup   int
	accepted int

	n        int
	min, max float64
}

// NewStreamSelector builds a selector with query-rate α and a total label
// budget. warmup is the number of initial scores used only to establish the
// normalization range (default 5 when ≤ 0).
func NewStreamSelector(alpha float64, budget, warmup int) *StreamSelector {
	if alpha <= 0 {
		alpha = 1
	}
	if budget < 0 {
		panic(fmt.Sprintf("active: negative budget %d", budget))
	}
	if warmup <= 0 {
		warmup = 5
	}
	return &StreamSelector{alpha: alpha, budget: budget, warmup: warmup}
}

// Offer presents one arriving sample's raw score u(x) (lower = more worth
// querying) and reports whether its label should be bought. The score is
// always folded into the running normalization range, even when rejected.
func (s *StreamSelector) Offer(rng *rand.Rand, score float64) bool {
	s.observe(score)
	if s.accepted >= s.budget {
		return false
	}
	p := s.alpha * s.omega(score)
	if p > 1 {
		p = 1
	}
	if rngutil.Bernoulli(rng, p) {
		s.accepted++
		return true
	}
	return false
}

// observe folds a score into the running range.
func (s *StreamSelector) observe(score float64) {
	if s.n == 0 {
		s.min, s.max = score, score
	} else {
		if score < s.min {
			s.min = score
		}
		if score > s.max {
			s.max = score
		}
	}
	s.n++
}

// omega returns 1 − normalized(u) under the running range, with the warm-up
// prior of 0.5 while the range is still uninformative.
func (s *StreamSelector) omega(score float64) float64 {
	if s.n <= s.warmup || s.max == s.min {
		return 0.5
	}
	norm := (score - s.min) / (s.max - s.min)
	return 1 - norm
}

// Accepted reports how many labels have been bought.
func (s *StreamSelector) Accepted() int { return s.accepted }

// Remaining reports the unused budget.
func (s *StreamSelector) Remaining() int { return s.budget - s.accepted }

// Seen reports the number of scores observed so far.
func (s *StreamSelector) Seen() int { return s.n }

// Range returns the current normalization range (min, max). Valid once at
// least one score has been observed.
func (s *StreamSelector) Range() (min, max float64) { return s.min, s.max }
