package active

// BALD is Bayesian Active Learning by Disagreement via Monte-Carlo dropout
// (Gal, Islam & Ghahramani, ICML 2017 — the paper's reference [44] for
// Bayesian epistemic-uncertainty heuristics): query the samples whose
// stochastic forward passes disagree most, BALD(x) = H(E[p]) − E[H(p)].
//
// It requires the protocol model to be built with DropoutRate > 0; with a
// deterministic model it falls back to entropy sampling (all passes agree,
// BALD ≡ 0, and the fallback keeps the method usable in mixed configs). Not
// part of the paper's comparison; included as an additional uncertainty
// baseline for the extension experiments.
type BALD struct {
	// Samples is the number of MC-dropout passes (default 10).
	Samples int
}

// Name implements Strategy.
func (BALD) Name() string { return "BALD" }

// SelectBatch implements Strategy.
func (b BALD) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	if ctx.Model.Config().DropoutRate <= 0 {
		return EntropyAL{}.SelectBatch(ctx, a)
	}
	samples := b.Samples
	if samples <= 0 {
		samples = 10
	}
	_, bald := ctx.Model.ProbsMC(ctx.PoolMatrix(), samples)
	return topK(bald, a)
}

var _ Strategy = BALD{}
