package active

import (
	"faction/internal/gda"
)

// DDU is the Deep Deterministic Uncertainty baseline (Mukhoti et al., CVPR
// 2023): fit a class-conditional Gaussian mixture on the labeled features and
// query the samples with the lowest density — highest epistemic uncertainty.
// It is FACTION without any fairness machinery: class-only components, no
// Δg term, greedy top-A selection.
type DDU struct {
	// GDA configures covariance estimation; the zero value uses the package
	// defaults.
	GDA gda.Config
}

// Name implements Strategy.
func (DDU) Name() string { return "DDU" }

// SelectBatch implements Strategy.
func (d DDU) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	est, err := gda.FitClassOnly(ctx.LabeledFeatures(), ctx.Labeled.Labels(), ctx.Labeled.Classes, d.GDA)
	if err != nil {
		// No labeled data yet: fall back to uncertainty sampling.
		return EntropyAL{}.SelectBatch(ctx, a)
	}
	scores := est.ScoreBatch(ctx.PoolFeatures())
	neg := make([]float64, len(scores.G))
	for i, g := range scores.G {
		neg[i] = -g // lowest density first
	}
	return topK(neg, a)
}
