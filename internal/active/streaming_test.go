package active

import (
	"math"
	"math/rand"
	"testing"
)

func TestStreamSelectorBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewStreamSelector(10, 7, 0) // huge α: accept whenever allowed
	taken := 0
	for i := 0; i < 1000; i++ {
		if s.Offer(rng, rng.Float64()) {
			taken++
		}
	}
	if taken != 7 || s.Accepted() != 7 || s.Remaining() != 0 {
		t.Fatalf("taken=%d accepted=%d remaining=%d", taken, s.Accepted(), s.Remaining())
	}
	if s.Seen() != 1000 {
		t.Fatalf("seen = %d", s.Seen())
	}
}

func TestStreamSelectorPrefersLowScores(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewStreamSelector(0.5, 1_000_000, 5)
	lowTaken, highTaken := 0, 0
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		// Alternate low (0.1) and high (0.9) scores within a [0,1]-ish range
		// established by occasional extremes.
		if i%100 == 0 {
			s.Offer(rng, 0)
			s.Offer(rng, 1)
			continue
		}
		if i%2 == 0 {
			if s.Offer(rng, 0.1) {
				lowTaken++
			}
		} else {
			if s.Offer(rng, 0.9) {
				highTaken++
			}
		}
	}
	if lowTaken <= highTaken*3 {
		t.Fatalf("low-score samples should be taken far more often: low=%d high=%d", lowTaken, highTaken)
	}
}

func TestStreamSelectorWarmupPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// During warm-up (and for constant scores) ω = 0.5 so p = α/2.
	s := NewStreamSelector(1, 1_000_000, 1_000_000)
	taken := 0
	const n = 40000
	for i := 0; i < n; i++ {
		if s.Offer(rng, 42) {
			taken++
		}
	}
	freq := float64(taken) / float64(n)
	if math.Abs(freq-0.5) > 0.02 {
		t.Fatalf("warm-up acceptance %g, want ≈0.5", freq)
	}
}

func TestStreamSelectorRangeTracksExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewStreamSelector(1, 10, 0)
	for _, v := range []float64{3, -1, 7, 2} {
		s.Offer(rng, v)
	}
	min, max := s.Range()
	if min != -1 || max != 7 {
		t.Fatalf("range = [%g, %g]", min, max)
	}
}

func TestStreamSelectorZeroBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewStreamSelector(1, 0, 0)
	for i := 0; i < 100; i++ {
		if s.Offer(rng, rng.Float64()) {
			t.Fatal("zero-budget selector accepted a sample")
		}
	}
}

func TestStreamSelectorNegativeBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStreamSelector(1, -1, 0)
}
