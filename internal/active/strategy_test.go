package active

import (
	"math"
	"math/rand"
	"testing"

	"faction/internal/data"
	"faction/internal/nn"
)

// newTestContext builds a small labeled set + pool + briefly trained model.
func newTestContext(t testing.TB, nLabeled, nPool int, seed int64) *Context {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(n int, name string) *data.Dataset {
		d := data.NewDataset(name, 2, 2)
		for i := 0; i < n; i++ {
			y := rng.Intn(2)
			s := 2*rng.Intn(2) - 1
			cx := -2.0
			if y == 1 {
				cx = 2.0
			}
			d.Append(data.Sample{
				X: []float64{cx + rng.NormFloat64()*0.7, rng.NormFloat64()},
				Y: y,
				S: s,
			})
		}
		return d
	}
	labeled := mk(nLabeled, "labeled")
	pool := mk(nPool, "pool")
	model := nn.NewClassifier(nn.Config{InputDim: 2, NumClasses: 2, Hidden: []int{8}, Seed: seed})
	model.Train(labeled.Matrix(), labeled.Labels(), nil, nn.NewSGD(0.1, 0.9, 0),
		nn.TrainOpts{Epochs: 10, BatchSize: 16}, rng)
	return &Context{Model: model, Labeled: labeled, Pool: pool, Rng: rng}
}

func allStrategies() []Strategy {
	return []Strategy{
		Random{},
		EntropyAL{},
		Margin{},
		QuFUR{Alpha: 1},
		DDU{},
		FAL{L: 16},
		FALCUR{K: 4},
		Decoupled{Seed: 3},
	}
}

// TestStrategyContract: every strategy returns exactly min(a, |pool|)
// distinct, in-range indices.
func TestStrategyContract(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for _, a := range []int{1, 5, 200} {
				ctx := newTestContext(t, 40, 30, 11)
				got := s.SelectBatch(ctx, a)
				want := a
				if want > 30 {
					want = 30
				}
				if len(got) != want {
					t.Fatalf("a=%d: got %d picks, want %d", a, len(got), want)
				}
				seen := map[int]bool{}
				for _, i := range got {
					if i < 0 || i >= 30 {
						t.Fatalf("index %d out of range", i)
					}
					if seen[i] {
						t.Fatalf("duplicate index %d", i)
					}
					seen[i] = true
				}
			}
		})
	}
}

func TestStrategyZeroBatch(t *testing.T) {
	for _, s := range allStrategies() {
		ctx := newTestContext(t, 30, 10, 12)
		if got := s.SelectBatch(ctx, 0); len(got) != 0 {
			t.Fatalf("%s: a=0 returned %v", s.Name(), got)
		}
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[string]bool{
		"Random": true, "Entropy-AL": true, "Margin": true, "QuFUR": true,
		"DDU": true, "FAL": true, "FAL-CUR": true, "Decoupled": true,
	}
	for _, s := range allStrategies() {
		if !want[s.Name()] {
			t.Fatalf("unexpected name %q", s.Name())
		}
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("entropy = %g, want ln2", got)
	}
	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Fatalf("entropy of certain = %g", got)
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9}
	got := topK(scores, 2)
	// Ties broken by index: expect 1 then 3.
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("topK = %v", got)
	}
	if len(topK(scores, 10)) != 4 {
		t.Fatal("topK should clamp k")
	}
}

func TestNormalizeScores(t *testing.T) {
	got := NormalizeScores([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("normalized = %v", got)
		}
	}
	// Constant batch: all ones.
	for _, v := range NormalizeScores([]float64{3, 3}) {
		if v != 1 {
			t.Fatal("constant batch should normalize to 1")
		}
	}
	if len(NormalizeScores(nil)) != 0 {
		t.Fatal("empty input")
	}
}

func TestEntropyALPicksMostUncertain(t *testing.T) {
	ctx := newTestContext(t, 60, 40, 13)
	got := EntropyAL{}.SelectBatch(ctx, 5)
	probs := ctx.PoolProbs()
	ent := make([]float64, probs.Rows)
	for i := range ent {
		ent[i] = Entropy(probs.Row(i))
	}
	picked := map[int]bool{}
	minPicked := math.Inf(1)
	for _, i := range got {
		picked[i] = true
		if ent[i] < minPicked {
			minPicked = ent[i]
		}
	}
	for i, e := range ent {
		if !picked[i] && e > minPicked+1e-12 {
			t.Fatalf("unpicked sample %d has entropy %g > min picked %g", i, e, minPicked)
		}
	}
}

func TestQuFURHighAlphaMatchesEntropyOrder(t *testing.T) {
	ctx := newTestContext(t, 60, 40, 14)
	qufur := QuFUR{Alpha: 1e9}.SelectBatch(ctx, 5)
	ctx2 := newTestContext(t, 60, 40, 14)
	entropy := EntropyAL{}.SelectBatch(ctx2, 5)
	if len(qufur) != len(entropy) {
		t.Fatal("length mismatch")
	}
	for i := range qufur {
		if qufur[i] != entropy[i] {
			t.Fatalf("α→∞ QuFUR should equal entropy order: %v vs %v", qufur, entropy)
		}
	}
}

func TestBernoulliScanZeroWeightsFillsDeterministically(t *testing.T) {
	ctx := newTestContext(t, 10, 5, 15)
	order := []int{3, 1, 4, 0, 2}
	w := make([]float64, 5)
	got, trials := bernoulliScan(ctx, order, w, 1, 3)
	if trials != 5 {
		t.Fatalf("trials = %d, want one sweep of 5", trials)
	}
	if got[0] != 3 || got[1] != 1 || got[2] != 4 {
		t.Fatalf("zero-weight scan = %v", got)
	}
}

func TestDDUPrefersOODSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	labeled := data.NewDataset("labeled", 2, 2)
	for i := 0; i < 60; i++ {
		y := rng.Intn(2)
		cx := -1.5
		if y == 1 {
			cx = 1.5
		}
		labeled.Append(data.Sample{X: []float64{cx + rng.NormFloat64()*0.4, rng.NormFloat64() * 0.4}, Y: y, S: 2*rng.Intn(2) - 1})
	}
	pool := data.NewDataset("pool", 2, 2)
	// First 10 pool samples: in-distribution. Last 5: far OOD.
	for i := 0; i < 10; i++ {
		pool.Append(data.Sample{X: []float64{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4}, Y: 0, S: 1})
	}
	for i := 0; i < 5; i++ {
		pool.Append(data.Sample{X: []float64{30 + rng.NormFloat64(), 30 + rng.NormFloat64()}, Y: 1, S: -1})
	}
	model := nn.NewClassifier(nn.Config{InputDim: 2, NumClasses: 2, Hidden: []int{8}, Seed: 17})
	model.Train(labeled.Matrix(), labeled.Labels(), nil, nn.NewSGD(0.05, 0.9, 0),
		nn.TrainOpts{Epochs: 15, BatchSize: 16}, rng)
	ctx := &Context{Model: model, Labeled: labeled, Pool: pool, Rng: rng}
	got := DDU{}.SelectBatch(ctx, 5)
	for _, i := range got {
		if i < 10 {
			t.Fatalf("DDU picked in-distribution sample %d over OOD: %v", i, got)
		}
	}
}

func TestDDUFallsBackWithoutLabels(t *testing.T) {
	ctx := newTestContext(t, 30, 20, 18)
	ctx.Labeled = data.NewDataset("empty", 2, 2)
	got := DDU{}.SelectBatch(ctx, 4)
	if len(got) != 4 {
		t.Fatalf("fallback returned %d picks", len(got))
	}
}

func TestFALPadsWhenShortlistSmall(t *testing.T) {
	ctx := newTestContext(t, 30, 20, 19)
	got := FAL{L: 2}.SelectBatch(ctx, 10)
	if len(got) != 10 {
		t.Fatalf("FAL with tiny shortlist returned %d picks, want 10", len(got))
	}
}

func TestDecoupledFallsBackOnSparseGroups(t *testing.T) {
	ctx := newTestContext(t, 40, 20, 20)
	// Force all labeled samples into one group.
	for i := range ctx.Labeled.Samples {
		ctx.Labeled.Samples[i].S = 1
	}
	got := Decoupled{Seed: 1}.SelectBatch(ctx, 5)
	if len(got) != 5 {
		t.Fatalf("fallback returned %d picks", len(got))
	}
}

func TestFALCURSpreadsAcrossClusters(t *testing.T) {
	// Pool = two distant blobs; with K=2 and a=4 both blobs must contribute.
	rng := rand.New(rand.NewSource(21))
	labeled := data.NewDataset("labeled", 2, 2)
	for i := 0; i < 30; i++ {
		y := rng.Intn(2)
		labeled.Append(data.Sample{X: []float64{rng.NormFloat64(), rng.NormFloat64()}, Y: y, S: 2*rng.Intn(2) - 1})
	}
	pool := data.NewDataset("pool", 2, 2)
	for i := 0; i < 10; i++ {
		pool.Append(data.Sample{X: []float64{-6 + rng.NormFloat64()*0.3, 0}, Y: 0, S: 2*(i%2) - 1})
	}
	for i := 0; i < 10; i++ {
		pool.Append(data.Sample{X: []float64{6 + rng.NormFloat64()*0.3, 0}, Y: 1, S: 2*(i%2) - 1})
	}
	model := nn.NewClassifier(nn.Config{InputDim: 2, NumClasses: 2, Hidden: []int{8}, Seed: 22})
	model.Train(labeled.Matrix(), labeled.Labels(), nil, nn.NewSGD(0.05, 0.9, 0),
		nn.TrainOpts{Epochs: 10, BatchSize: 16}, rng)
	ctx := &Context{Model: model, Labeled: labeled, Pool: pool, Rng: rng}
	got := FALCUR{K: 2}.SelectBatch(ctx, 4)
	left, right := 0, 0
	for _, i := range got {
		if i < 10 {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Fatalf("FAL-CUR ignored a cluster: left=%d right=%d", left, right)
	}
}

func TestContextCaching(t *testing.T) {
	ctx := newTestContext(t, 20, 15, 23)
	a := ctx.PoolProbs()
	b := ctx.PoolProbs()
	if a != b {
		t.Fatal("PoolProbs should be cached")
	}
	f1 := ctx.PoolFeatures()
	f2 := ctx.PoolFeatures()
	if f1 != f2 {
		t.Fatal("PoolFeatures should be cached")
	}
}

func TestCoresetContract(t *testing.T) {
	ctx := newTestContext(t, 40, 30, 31)
	got := (Coreset{}).SelectBatch(ctx, 8)
	if len(got) != 8 {
		t.Fatalf("picks = %d", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 30 || seen[i] {
			t.Fatalf("bad picks %v", got)
		}
		seen[i] = true
	}
}

func TestCoresetPicksDiverseAndUncovered(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	// Labeled cluster near the origin; pool has one distant outlier and many
	// points inside the covered region. The outlier must be picked first.
	labeled := data.NewDataset("labeled", 2, 2)
	for i := 0; i < 30; i++ {
		labeled.Append(data.Sample{X: []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}, Y: i % 2, S: 2*(i%2) - 1})
	}
	pool := data.NewDataset("pool", 2, 2)
	for i := 0; i < 15; i++ {
		pool.Append(data.Sample{X: []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}, Y: 0, S: 1})
	}
	pool.Append(data.Sample{X: []float64{25, 25}, Y: 1, S: -1}) // index 15
	model := nn.NewClassifier(nn.Config{InputDim: 2, NumClasses: 2, Hidden: []int{8}, Seed: 33})
	model.Train(labeled.Matrix(), labeled.Labels(), nil, nn.NewSGD(0.05, 0.9, 0),
		nn.TrainOpts{Epochs: 5, BatchSize: 16}, rng)
	ctx := &Context{Model: model, Labeled: labeled, Pool: pool, Rng: rng}
	got := (Coreset{}).SelectBatch(ctx, 1)
	if got[0] != 15 {
		t.Fatalf("coreset should pick the uncovered outlier, got %v", got)
	}
}

func TestCoresetColdStart(t *testing.T) {
	ctx := newTestContext(t, 30, 12, 34)
	ctx.Labeled = data.NewDataset("empty", 2, 2)
	got := (Coreset{}).SelectBatch(ctx, 5)
	if len(got) != 5 {
		t.Fatalf("cold-start picks = %d", len(got))
	}
}

func TestBALDWithDropoutModel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	labeled := data.NewDataset("labeled", 2, 2)
	for i := 0; i < 60; i++ {
		y := rng.Intn(2)
		cx := -2.0
		if y == 1 {
			cx = 2.0
		}
		labeled.Append(data.Sample{X: []float64{cx + rng.NormFloat64()*0.5, rng.NormFloat64()}, Y: y, S: 2*rng.Intn(2) - 1})
	}
	pool := data.NewDataset("pool", 2, 2)
	for i := 0; i < 20; i++ {
		pool.Append(data.Sample{X: []float64{rng.NormFloat64() * 3, rng.NormFloat64()}, Y: 0, S: 1})
	}
	model := nn.NewClassifier(nn.Config{InputDim: 2, NumClasses: 2, Hidden: []int{16}, DropoutRate: 0.3, Seed: 42})
	model.Train(labeled.Matrix(), labeled.Labels(), nil, nn.NewAdam(0.01),
		nn.TrainOpts{Epochs: 20, BatchSize: 16}, rng)
	ctx := &Context{Model: model, Labeled: labeled, Pool: pool, Rng: rng}
	got := (BALD{Samples: 15}).SelectBatch(ctx, 5)
	if len(got) != 5 {
		t.Fatalf("picks = %d", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 20 || seen[i] {
			t.Fatalf("bad picks %v", got)
		}
		seen[i] = true
	}
}

func TestBALDFallsBackWithoutDropout(t *testing.T) {
	ctx := newTestContext(t, 30, 15, 43)
	got := (BALD{}).SelectBatch(ctx, 4)
	if len(got) != 4 {
		t.Fatalf("fallback picks = %d", len(got))
	}
}

// TestFALPrefersFairnessImprovingCandidates builds a labeled pool whose
// predictions are skewed against one group and two equally-uncertain
// candidates; the candidate whose hypothesized labels rebalance parity must
// rank first.
func TestFALPrefersFairnessImprovingCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	labeled := data.NewDataset("labeled", 2, 2)
	// Group +1 clustered where the model predicts 1; group −1 where it
	// predicts 0 — a parity gap the selection can influence.
	for i := 0; i < 40; i++ {
		labeled.Append(data.Sample{X: []float64{2 + rng.NormFloat64()*0.3, 0}, Y: 1, S: 1})
		labeled.Append(data.Sample{X: []float64{-2 + rng.NormFloat64()*0.3, 0}, Y: 0, S: -1})
	}
	model := nn.NewClassifier(nn.Config{InputDim: 2, NumClasses: 2, Hidden: []int{8}, Seed: 72})
	model.Train(labeled.Matrix(), labeled.Labels(), nil, nn.NewAdam(0.02),
		nn.TrainOpts{Epochs: 20, BatchSize: 32}, rng)
	pool := data.NewDataset("pool", 2, 2)
	pool.Append(
		data.Sample{X: []float64{0, 0}, Y: 0, S: 1},     // boundary candidate A
		data.Sample{X: []float64{0, 0.01}, Y: 1, S: -1}, // boundary candidate B
	)
	ctx := &Context{Model: model, Labeled: labeled, Pool: pool, Rng: rng}
	picks := (FAL{L: 2, Lambda: 0.01}).SelectBatch(ctx, 2)
	if len(picks) != 2 {
		t.Fatalf("picks = %v", picks)
	}
	// With λ≈0, ranking is almost purely by expected fairness; the contract
	// here is just that both candidates are returned and the scoring ran
	// without the counts-only shortcut (covered by runtime expectations in
	// Fig. 5). Order assertions would overfit the surrogate's one-step
	// dynamics, so assert determinism instead.
	again := (FAL{L: 2, Lambda: 0.01}).SelectBatch(ctx, 2)
	for i := range picks {
		if picks[i] != again[i] {
			t.Fatal("FAL ranking must be deterministic for a fixed context")
		}
	}
}
