package active

import (
	"faction/internal/mat"
	"faction/internal/rngutil"
)

// QuFUR adapts "Active Online Learning with Hidden Shifting Domains"
// (Chen et al., AISTATS 2021) to this protocol: each sample's uncertainty
// determines its query *probability*, so the method spends more of its
// budget when the model is uncertain (e.g. right after a domain shift) and
// less once the domain is familiar. Uncertainty is the prediction entropy,
// min–max normalized per batch; querying is decided by Bernoulli trials with
// p = min(α·u, 1), scanning samples from most to least uncertain until the
// acquisition batch is filled.
type QuFUR struct {
	// Alpha scales the query probability (the paper's query-rate parameter).
	Alpha float64
}

// Name implements Strategy.
func (QuFUR) Name() string { return "QuFUR" }

// SelectBatch implements Strategy.
func (q QuFUR) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	alpha := q.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	probs := ctx.PoolProbs()
	scores := make([]float64, probs.Rows)
	for i := range scores {
		scores[i] = Entropy(probs.Row(i))
	}
	norm := NormalizeScores(scores)
	order := topK(norm, len(norm)) // most uncertain first
	picks, _ := bernoulliScan(ctx, order, norm, alpha, a)
	return picks
}

// NormalizeScores min–max normalizes scores into [0,1]. A constant batch
// normalizes to all ones (every sample equally preferred).
func NormalizeScores(scores []float64) []float64 {
	out := make([]float64, len(scores))
	if len(scores) == 0 {
		return out
	}
	lo, hi := mat.MinMax(scores)
	if hi == lo {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	span := hi - lo
	for i, v := range scores {
		out[i] = (v - lo) / span
	}
	return out
}

// BernoulliSelect orders candidates by descending weight and fills an
// acquisition batch of size a via Bernoulli trials with probability
// p = min(α·w, 1) per candidate (Algorithm 1 lines 25–36). It is the shared
// probabilistic-selection backend of QuFUR and FACTION.
func BernoulliSelect(ctx *Context, w []float64, alpha float64, a int) []int {
	picks, _ := BernoulliSelectCount(ctx, w, alpha, a)
	return picks
}

// BernoulliSelectCount is BernoulliSelect additionally reporting the number
// of Bernoulli trials performed — the empirical query complexity q_t of
// Theorem 1.
func BernoulliSelectCount(ctx *Context, w []float64, alpha float64, a int) ([]int, int) {
	if a <= 0 || len(w) == 0 {
		return nil, 0
	}
	if a > len(w) {
		a = len(w)
	}
	order := topK(w, len(w))
	return bernoulliScan(ctx, order, w, alpha, a)
}

// maxBernoulliSweeps caps the number of passes over the candidate list
// before the remaining slots are filled deterministically, bounding the
// worst case for vanishing query probabilities.
const maxBernoulliSweeps = 1000

// bernoulliScan repeatedly sweeps the candidate order, querying index i with
// probability min(α·w[i], 1), until a samples are chosen (Algorithm 1 lines
// 26–36). When every remaining probability is zero — or after
// maxBernoulliSweeps passes — the remaining slots are filled in order so the
// acquisition-batch contract always holds. The second return value is the
// number of Bernoulli trials performed.
func bernoulliScan(ctx *Context, order []int, w []float64, alpha float64, a int) ([]int, int) {
	chosen := make([]int, 0, a)
	taken := make([]bool, len(w))
	trials := 0
	for sweep := 0; len(chosen) < a && sweep < maxBernoulliSweeps; sweep++ {
		remainingMass := 0.0
		for _, i := range order {
			if len(chosen) >= a {
				break
			}
			if taken[i] {
				continue
			}
			p := alpha * w[i]
			if p > 1 {
				p = 1
			}
			remainingMass += p
			trials++
			if rngutil.Bernoulli(ctx.Rng, p) {
				taken[i] = true
				chosen = append(chosen, i)
			}
		}
		if remainingMass == 0 {
			break
		}
	}
	for _, i := range order { // fill any shortfall deterministically
		if len(chosen) >= a {
			break
		}
		if !taken[i] {
			taken[i] = true
			chosen = append(chosen, i)
		}
	}
	return chosen, trials
}
