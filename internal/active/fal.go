package active

import (
	"math/rand"

	"faction/internal/fairness"
	"faction/internal/mat"
	"faction/internal/nn"
)

// FAL implements Fair Active Learning (Anahideh et al., Expert Systems with
// Applications 2022), adapted to the online setting by running it per task:
// an entropy shortlist of the l most uncertain pool samples is re-ranked by
// *Expected Fairness* — the expected demographic-parity gap of the model if
// the candidate were added to the labeled set, taking the expectation over
// the model's predicted label distribution for the candidate:
//
//	EF(x) = Σ_c p_c(x) · DDP( h⁺(x,c) on D^labeled )
//
// where h⁺(x,c) is the current model updated with one gradient step on
// (x, c). The candidate whose addition is expected to make the model fairest
// wins; entropy breaks the trade-off via Lambda.
//
// Computing EF requires, per shortlisted candidate and per hypothesized
// label, cloning the model, one update step, and a full re-prediction of the
// labeled pool — which is what makes FAL the most expensive method in the
// paper's runtime comparison (Fig. 5a).
type FAL struct {
	// L is the entropy shortlist size (the paper sweeps {64, 96, 128, 196,
	// 256} in Fig. 3). Default 128.
	L int
	// Lambda balances entropy and expected fairness in the final score;
	// 0.5 by default.
	Lambda float64
	// UpdateLR is the learning rate of the hypothetical one-step update
	// (default 0.05).
	UpdateLR float64
}

// Name implements Strategy.
func (FAL) Name() string { return "FAL" }

// SelectBatch implements Strategy.
func (f FAL) SelectBatch(ctx *Context, a int) []int {
	a = clampA(ctx, a)
	if a <= 0 {
		return nil
	}
	l := f.L
	if l <= 0 {
		l = 128
	}
	lambda := f.Lambda
	if lambda <= 0 {
		lambda = 0.5
	}
	lr := f.UpdateLR
	if lr <= 0 {
		lr = 0.05
	}
	probs := ctx.PoolProbs()
	entropies := make([]float64, probs.Rows)
	for i := range entropies {
		entropies[i] = Entropy(probs.Row(i))
	}
	shortlist := topK(entropies, l)

	labX := ctx.Labeled.Matrix()
	labSens := ctx.Labeled.Sensitive()

	// Expected fairness per shortlisted candidate:
	// E_c[ DDP(one-step-updated model on the labeled pool) ].
	expFair := make([]float64, len(shortlist))
	if ctx.Labeled.Len() > 0 {
		candX := mat.NewDense(1, ctx.Pool.Dim)
		for rank, idx := range shortlist {
			copy(candX.Row(0), ctx.Pool.Samples[idx].X)
			ef := 0.0
			for c := 0; c < probs.Cols; c++ {
				pc := probs.At(idx, c)
				if pc < 1e-6 {
					continue
				}
				ef += pc * fairness.DDP(hypotheticalPredictions(ctx.Model, candX, c, lr, labX), labSens)
			}
			expFair[rank] = ef
		}
	}

	// Combined score over the shortlist: high entropy, low expected unfairness.
	normEnt := make([]float64, len(shortlist))
	for rank, idx := range shortlist {
		normEnt[rank] = entropies[idx]
	}
	normEnt = NormalizeScores(normEnt)
	normFair := NormalizeScores(expFair)
	combined := make([]float64, len(shortlist))
	for i := range combined {
		combined[i] = lambda*normEnt[i] + (1-lambda)*(1-normFair[i])
	}
	k := a
	if k > len(shortlist) {
		k = len(shortlist)
	}
	picks := topK(combined, k)
	out := make([]int, len(picks))
	for i, p := range picks {
		out[i] = shortlist[p]
	}
	// If the shortlist was smaller than a (tiny pools), pad with entropy.
	if len(out) < a {
		seen := map[int]bool{}
		for _, i := range out {
			seen[i] = true
		}
		for _, i := range topK(entropies, len(entropies)) {
			if len(out) >= a {
				break
			}
			if !seen[i] {
				out = append(out, i)
			}
		}
	}
	return out
}

// hypotheticalPredictions clones the model, applies one SGD step on the
// single labeled candidate (x, y), and returns the updated model's
// predictions on labX.
func hypotheticalPredictions(model *nn.Classifier, x *mat.Dense, y int, lr float64, labX *mat.Dense) []int {
	clone := model.Clone()
	opt := nn.NewSGD(lr, 0, 0)
	clone.Train(x, []int{y}, nil, opt, nn.TrainOpts{Epochs: 1, BatchSize: 1}, noShuffleRand())
	return clone.PredictClasses(labX)
}

// noShuffleRand returns a fixed-seed source for degenerate single-sample
// training where shuffling is a no-op.
func noShuffleRand() *rand.Rand { return rand.New(rand.NewSource(1)) }
