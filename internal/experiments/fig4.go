package experiments

import (
	"fmt"
	"io"

	"faction/internal/faction"
	"faction/internal/online"
	"faction/internal/report"
)

// ablationVariants lists the Fig. 4 / Table I FACTION variants in the
// paper's order.
func ablationVariants() []struct {
	Name     string
	Sel, Reg bool
} {
	return []struct {
		Name     string
		Sel, Reg bool
	}{
		{"FACTION", true, true},
		{"FACTION w/o fair select", false, true},
		{"FACTION w/o fair reg", true, false},
		{"FACTION w/o fair select & fair reg", false, false},
	}
}

func ablationSpecs() []online.MethodSpec {
	var out []online.MethodSpec
	for _, v := range ablationVariants() {
		o := faction.Defaults()
		o.FairSelect = v.Sel
		o.FairReg = v.Reg
		out = append(out, online.FactionSpec(o))
	}
	return out
}

// Fig4Result holds the ablation curves: FACTION against its three simplified
// variants on every dataset.
type Fig4Result struct {
	Datasets []string
	Variants []string
	Rows     []PanelSet
}

// RunFig4 executes the ablation grid of Fig. 4.
func RunFig4(opt Options) *Fig4Result {
	opt.setDefaults()
	specs := ablationSpecs()
	grid := runGrid(opt, opt.Datasets, func(int64) []online.MethodSpec { return specs })

	res := &Fig4Result{Datasets: opt.Datasets}
	for _, v := range ablationVariants() {
		res.Variants = append(res.Variants, v.Name)
	}
	for _, ds := range opt.Datasets {
		row := PanelSet{Dataset: ds, Panels: map[Metric][]report.Series{}}
		for _, metric := range Metrics() {
			for _, variant := range res.Variants {
				row.Panels[metric] = append(row.Panels[metric], taskSeries(variant, grid[ds][variant], metric))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the ablation panels per dataset.
func (r *Fig4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: ablations — simplified variants should exhibit inferior fairness")
	for _, row := range r.Rows {
		for _, metric := range Metrics() {
			fmt.Fprintln(w)
			report.Chart(w, fmt.Sprintf("[%s] %s per task", row.Dataset, metric), row.Panels[metric], 8)
			report.RenderSeries(w, "", row.Panels[metric], 3)
		}
	}
}

// MeanFairness returns the mean-over-tasks value of a fairness metric per
// dataset and variant, used to check that the full system is fairest.
func (r *Fig4Result) MeanFairness(metric Metric) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, row := range r.Rows {
		out[row.Dataset] = map[string]float64{}
		for i, variant := range r.Variants {
			s := row.Panels[metric][i]
			out[row.Dataset][variant] = report.Mean(s.Mean)
		}
	}
	return out
}
