package experiments

import (
	"fmt"

	"faction/internal/report"
)

// Tabler is implemented by every experiment result: it exposes the result as
// named tables suitable for CSV export (long format for per-task curves),
// so external plotting tools can regenerate the paper's figures from the
// exact measured data.
type Tabler interface {
	CSVTables() map[string]*report.Table
}

// curveTable flattens per-task series into a long-format table:
// one row per (dataset, metric, method, task).
func curveTable(title string, rows []PanelSet) *report.Table {
	t := &report.Table{
		Title:   title,
		Columns: []string{"dataset", "metric", "method", "task", "mean", "std"},
	}
	for _, row := range rows {
		for _, metric := range Metrics() {
			for _, s := range row.Panels[metric] {
				for i := range s.Mean {
					std := 0.0
					if len(s.Std) == len(s.Mean) {
						std = s.Std[i]
					}
					t.AddRow(row.Dataset, string(metric), s.Name,
						fmt.Sprint(i+1), report.F(s.Mean[i], 6), report.F(std, 6))
				}
			}
		}
	}
	return t
}

// CSVTables implements Tabler.
func (r *Fig2Result) CSVTables() map[string]*report.Table {
	return map[string]*report.Table{
		"curves":  curveTable("fig2 per-task curves", r.Rows),
		"summary": r.SummaryTable(),
	}
}

// CSVTables implements Tabler.
func (r *Fig3Result) CSVTables() map[string]*report.Table {
	t := &report.Table{
		Title:   "fig3 trade-off points",
		Columns: []string{"dataset", "method", "param", "value", "acc", "accStd", "eod", "eodStd"},
	}
	for _, ds := range r.Datasets {
		for _, p := range r.Points[ds] {
			t.AddRow(ds, p.Method, p.Param, report.F(p.Value, 4),
				report.F(p.Acc, 6), report.F(p.AccStd, 6),
				report.F(p.EOD, 6), report.F(p.EODStd, 6))
		}
	}
	return map[string]*report.Table{"tradeoff": t}
}

// CSVTables implements Tabler.
func (r *Fig4Result) CSVTables() map[string]*report.Table {
	return map[string]*report.Table{"curves": curveTable("fig4 ablation curves", r.Rows)}
}

// CSVTables implements Tabler.
func (r *Fig5Result) CSVTables() map[string]*report.Table {
	mk := func(title string, order []string, cells map[string]map[string][2]float64) *report.Table {
		t := &report.Table{
			Title:   title,
			Columns: []string{"dataset", "method", "seconds", "std"},
		}
		for _, ds := range r.Datasets {
			for _, m := range order {
				v := cells[ds][m]
				t.AddRow(ds, m, report.F(v[0], 4), report.F(v[1], 4))
			}
		}
		return t
	}
	return map[string]*report.Table{
		"fair-aware": mk("fig5a runtimes", r.FairAwareOrder, r.FairAware),
		"variants":   mk("fig5b runtimes", r.VariantOrder, r.Variants),
	}
}

// CSVTables implements Tabler.
func (r *Table1Result) CSVTables() map[string]*report.Table {
	t := &report.Table{
		Title:   "table1",
		Columns: []string{"model", "runtimeSec", "runtimeStd", "acc", "ddp", "eod", "mi"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Model,
			report.F(row.RuntimeSec, 4), report.F(row.RuntimeStd, 4),
			report.F(row.Acc, 6), report.F(row.DDP, 6),
			report.F(row.EOD, 6), report.F(row.MI, 6))
	}
	return map[string]*report.Table{"table1": t}
}

// CSVTables implements Tabler.
func (r *Fig6Result) CSVTables() map[string]*report.Table {
	row := PanelSet{Dataset: "celeba-wide", Panels: r.Panels}
	return map[string]*report.Table{"curves": curveTable("fig6 wide-backbone curves", []PanelSet{row})}
}

// CSVTables implements Tabler.
func (r *TheoryResult) CSVTables() map[string]*report.Table {
	horizon := &report.Table{
		Title:   "theory horizon sweep",
		Columns: []string{"T", "regret", "violation"},
	}
	for i, T := range r.Ts {
		horizon.AddRow(fmt.Sprint(T), report.F(r.Regret[i], 6), report.F(r.Violation[i], 6))
	}
	alpha := &report.Table{
		Title:   "theory alpha sweep",
		Columns: []string{"alpha", "trials"},
	}
	for i, a := range r.Alphas {
		alpha.AddRow(report.F(a, 4), report.F(r.Trials[i], 1))
	}
	return map[string]*report.Table{"horizon": horizon, "alpha": alpha}
}

// CSVTables implements Tabler.
func (r *DesignResult) CSVTables() map[string]*report.Table {
	t := &report.Table{
		Title:   "design ablation",
		Columns: []string{"configuration", "acc", "ddp", "eod", "mi", "cfFlip", "runtimeSec"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			report.F(row.Acc, 6), report.F(row.DDP, 6), report.F(row.EOD, 6),
			report.F(row.MI, 6), report.F(row.FlipRate, 6), report.F(row.RuntimeSec, 4))
	}
	return map[string]*report.Table{"design": t}
}
