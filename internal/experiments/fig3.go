package experiments

import (
	"fmt"
	"io"

	"faction/internal/active"
	"faction/internal/faction"
	"faction/internal/online"
	"faction/internal/report"
)

// TradeoffPoint is one configuration of one fairness-aware method in the
// accuracy–EOD plane of Fig. 3 (top-left is preferred).
type TradeoffPoint struct {
	Method string
	Param  string
	Value  float64
	Acc    float64
	AccStd float64
	EOD    float64
	EODStd float64
}

// Fig3Result holds the fairness–accuracy trade-off sweeps per dataset.
type Fig3Result struct {
	Datasets []string
	// Points maps dataset → sweep points of all four fairness-aware methods.
	Points map[string][]TradeoffPoint
}

// fig3Sweeps mirrors Section V-B's sensitivity analysis: each fairness-aware
// method's key parameter and its swept values.
func fig3Sweeps() []struct {
	Method string
	Param  string
	Values []float64
	Make   func(v float64, seed int64) online.MethodSpec
} {
	return []struct {
		Method string
		Param  string
		Values []float64
		Make   func(v float64, seed int64) online.MethodSpec
	}{
		{
			Method: "FACTION", Param: "mu",
			Values: []float64{0.3, 0.5, 0.7, 1.4, 2.8},
			Make: func(v float64, seed int64) online.MethodSpec {
				o := faction.Defaults()
				o.Mu = v
				spec := online.FactionSpec(o)
				spec.Name = fmt.Sprintf("FACTION(mu=%g)", v)
				return spec
			},
		},
		{
			Method: "FAL", Param: "l",
			Values: []float64{64, 96, 128, 196, 256},
			Make: func(v float64, seed int64) online.MethodSpec {
				return online.MethodSpec{
					Name:     fmt.Sprintf("FAL(l=%g)", v),
					Strategy: active.FAL{L: int(v)},
				}
			},
		},
		{
			Method: "FAL-CUR", Param: "beta",
			Values: []float64{0.3, 0.4, 0.5, 0.6, 0.7},
			Make: func(v float64, seed int64) online.MethodSpec {
				return online.MethodSpec{
					Name:     fmt.Sprintf("FAL-CUR(beta=%g)", v),
					Strategy: active.FALCUR{K: 8, Beta: v},
				}
			},
		},
		{
			Method: "Decoupled", Param: "alpha",
			Values: []float64{0.1, 0.2, 0.4, 0.6, 0.8},
			Make: func(v float64, seed int64) online.MethodSpec {
				return online.MethodSpec{
					Name:     fmt.Sprintf("Decoupled(alpha=%g)", v),
					Strategy: active.Decoupled{Threshold: v, Seed: seed},
				}
			},
		},
	}
}

// RunFig3 sweeps each fairness-aware method's key parameter and reports the
// resulting mean accuracy and EOD (over tasks and runs) per configuration.
func RunFig3(opt Options) *Fig3Result {
	opt.setDefaults()
	sweeps := fig3Sweeps()
	mkMethods := func(runSeed int64) []online.MethodSpec {
		var out []online.MethodSpec
		for _, sw := range sweeps {
			if !opt.wantMethod(sw.Method) {
				continue
			}
			for _, v := range sw.Values {
				out = append(out, sw.Make(v, runSeed))
			}
		}
		return out
	}
	grid := runGrid(opt, opt.Datasets, mkMethods)

	res := &Fig3Result{Datasets: opt.Datasets, Points: map[string][]TradeoffPoint{}}
	for _, ds := range opt.Datasets {
		for _, sw := range sweeps {
			if !opt.wantMethod(sw.Method) {
				continue
			}
			for _, v := range sw.Values {
				name := sw.Make(v, 0).Name
				runs := grid[ds][name]
				accs := meanOverTasks(runs, MetricAccuracy)
				eods := meanOverTasks(runs, MetricEOD)
				res.Points[ds] = append(res.Points[ds], TradeoffPoint{
					Method: sw.Method,
					Param:  sw.Param,
					Value:  v,
					Acc:    report.Mean(accs),
					AccStd: report.Std(accs),
					EOD:    report.Mean(eods),
					EODStd: report.Std(eods),
				})
			}
		}
	}
	return res
}

// Render prints one trade-off table per dataset (the textual Fig. 3 panel).
func (r *Fig3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: fairness–accuracy trade-offs (Accuracy↑ vs EOD↓; top-left preferred)")
	for _, ds := range r.Datasets {
		t := report.Table{
			Title:   fmt.Sprintf("\n[%s]", ds),
			Columns: []string{"method", "param", "value", "Accuracy", "EOD"},
		}
		for _, p := range r.Points[ds] {
			t.AddRow(p.Method, p.Param, report.F(p.Value, 2),
				report.MeanStd(p.Acc, p.AccStd, 3), report.MeanStd(p.EOD, p.EODStd, 3))
		}
		t.Render(w)
	}
}
