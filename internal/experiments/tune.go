package experiments

import (
	"fmt"
	"io"

	"faction/internal/data"
	"faction/internal/faction"
	"faction/internal/online"
	"faction/internal/report"
	"faction/internal/rngutil"
)

// TunePoint is one evaluated configuration of the μ grid.
type TunePoint struct {
	Mu       float64
	Acc      float64
	DDP      float64
	EOD      float64
	MI       float64
	Selected bool
}

// TuneResult is the outcome of the Section V-A3 tuning procedure for μ:
// the grid, the selected value, and the selection rule's inputs.
type TuneResult struct {
	Dataset string
	// AccFloor is the accuracy constraint: best grid accuracy × (1 − Slack).
	AccFloor float64
	Slack    float64
	Points   []TunePoint
	BestMu   float64
}

// RunTune reproduces the paper's hyperparameter-tuning protocol for the
// fairness weight μ (Section V-A3 tunes μ over {0.1 … 3}): run the protocol
// on a held-out tuning stream for every candidate, then select the fairest
// configuration (lowest DDP) whose mean accuracy stays within a slack of the
// best achieved accuracy — the standard constrained model-selection rule for
// fairness work. The tuning stream uses a seed disjoint from the evaluation
// seeds so tuning never sees evaluation data.
func RunTune(opt Options) *TuneResult {
	opt.setDefaults()
	dataset := "nysf"
	if len(opt.Datasets) > 0 && len(opt.Datasets) < len(data.StreamNames()) {
		dataset = opt.Datasets[0]
	}
	const slack = 0.05
	grid := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.2, 1.8, 2.4, 3}

	res := &TuneResult{Dataset: dataset, Slack: slack}
	for _, mu := range grid {
		var accs, ddps, eods, mis []float64
		for r := 0; r < opt.Runs; r++ {
			seed := rngutil.DeriveSeed(opt.Seed, "tune", dataset, fmt.Sprint(mu), fmt.Sprint(r))
			stream, err := data.ByName(dataset, opt.Scale.StreamConfig(seed))
			if err != nil {
				panic(err)
			}
			o := faction.Defaults()
			o.Mu = mu
			cfg := opt.Scale.RunConfig(seed)
			run := online.MustRun(stream, online.FactionSpec(o), cfg)
			mean := run.MeanReport()
			accs = append(accs, mean.Accuracy)
			ddps = append(ddps, mean.DDP)
			eods = append(eods, mean.EOD)
			mis = append(mis, mean.MI)
			opt.progressf("done tune mu=%g run %d\n", mu, r)
		}
		res.Points = append(res.Points, TunePoint{
			Mu:  mu,
			Acc: report.Mean(accs),
			DDP: report.Mean(ddps),
			EOD: report.Mean(eods),
			MI:  report.Mean(mis),
		})
	}

	bestAcc := 0.0
	for _, p := range res.Points {
		if p.Acc > bestAcc {
			bestAcc = p.Acc
		}
	}
	res.AccFloor = bestAcc * (1 - slack)
	bestIdx := -1
	for i, p := range res.Points {
		if p.Acc < res.AccFloor {
			continue
		}
		if bestIdx < 0 || p.DDP < res.Points[bestIdx].DDP {
			bestIdx = i
		}
	}
	if bestIdx < 0 { // nothing meets the floor: fall back to most accurate
		for i, p := range res.Points {
			if bestIdx < 0 || p.Acc > res.Points[bestIdx].Acc {
				bestIdx = i
			}
		}
	}
	res.Points[bestIdx].Selected = true
	res.BestMu = res.Points[bestIdx].Mu
	return res
}

// Render prints the tuning grid and the selected μ.
func (r *TuneResult) Render(w io.Writer) {
	t := report.Table{
		Title:   fmt.Sprintf("μ tuning on %s (select lowest DDP with accuracy ≥ %.3f)", r.Dataset, r.AccFloor),
		Columns: []string{"mu", "Acc(↑)", "DDP(↓)", "EOD(↓)", "MI(↓)", "selected"},
	}
	for _, p := range r.Points {
		sel := ""
		if p.Selected {
			sel = "<=="
		}
		t.AddRow(report.F(p.Mu, 2), report.F(p.Acc, 3), report.F(p.DDP, 3),
			report.F(p.EOD, 3), report.F(p.MI, 4), sel)
	}
	t.Render(w)
	fmt.Fprintf(w, "selected mu = %g\n", r.BestMu)
}

// CSVTables implements Tabler.
func (r *TuneResult) CSVTables() map[string]*report.Table {
	t := &report.Table{
		Title:   "mu tuning grid",
		Columns: []string{"mu", "acc", "ddp", "eod", "mi", "selected"},
	}
	for _, p := range r.Points {
		sel := "0"
		if p.Selected {
			sel = "1"
		}
		t.AddRow(report.F(p.Mu, 4), report.F(p.Acc, 6), report.F(p.DDP, 6),
			report.F(p.EOD, 6), report.F(p.MI, 6), sel)
	}
	return map[string]*report.Table{"grid": t}
}
