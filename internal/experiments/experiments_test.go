package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"faction/internal/fairness"
	"faction/internal/online"
)

func ciOpts(datasets, methods []string) Options {
	return Options{
		Seed:     42,
		Runs:     1,
		Scale:    ScaleCI,
		Datasets: datasets,
		Methods:  methods,
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func TestParseScale(t *testing.T) {
	for _, s := range []string{"ci", "small", "paper"} {
		if _, err := ParseScale(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("expected error")
	}
}

func TestScaleConfigs(t *testing.T) {
	for _, s := range []Scale{ScaleCI, ScaleSmall, ScalePaper} {
		sc := s.StreamConfig(1)
		rc := s.RunConfig(1)
		if sc.SamplesPerTask <= 0 || rc.Budget <= 0 || rc.AcqSize <= 0 {
			t.Fatalf("scale %s has invalid config", s)
		}
		if len(s.WideHidden()) != 3 {
			t.Fatalf("scale %s wide hidden = %v", s, s.WideHidden())
		}
		if s.DefaultRuns() <= 0 {
			t.Fatal("runs")
		}
	}
	// Paper scale matches Section V constants.
	rc := ScalePaper.RunConfig(1)
	if rc.Budget != 200 || rc.AcqSize != 50 || rc.WarmStart != 100 || rc.Hidden[0] != 512 {
		t.Fatalf("paper config = %+v", rc)
	}
}

func TestRunFig2Structure(t *testing.T) {
	opt := ciOpts([]string{"rcmnist"}, []string{"FACTION", "Random"})
	res := RunFig2(opt)
	if len(res.Rows) != 1 || len(res.Methods) != 2 {
		t.Fatalf("rows=%d methods=%v", len(res.Rows), res.Methods)
	}
	row := res.Rows[0]
	for _, metric := range Metrics() {
		series := row.Panels[metric]
		if len(series) != 2 {
			t.Fatalf("%s: %d series", metric, len(series))
		}
		for _, s := range series {
			if len(s.Mean) != 12 { // rcmnist has 12 tasks
				t.Fatalf("%s/%s: %d tasks, want 12", metric, s.Name, len(s.Mean))
			}
			for _, v := range s.Mean {
				if !finite(v) || v < 0 {
					t.Fatalf("%s/%s: bad value %g", metric, s.Name, v)
				}
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "FACTION") || !strings.Contains(buf.String(), "[rcmnist] DDP per task") {
		t.Fatal("render missing content")
	}
	sum := res.SummaryTable()
	if len(sum.Rows) != 2 {
		t.Fatalf("summary rows = %d", len(sum.Rows))
	}
	wins := res.FairnessWinRate("FACTION", MetricDDP)
	if w, ok := wins["rcmnist"]; !ok || w < 0 || w > 1 {
		t.Fatalf("win rate = %v", wins)
	}
}

func TestRunFig3Structure(t *testing.T) {
	opt := ciOpts([]string{"rcmnist"}, []string{"FACTION"})
	res := RunFig3(opt)
	pts := res.Points["rcmnist"]
	if len(pts) != 5 { // five μ values
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Method != "FACTION" || p.Param != "mu" {
			t.Fatalf("point = %+v", p)
		}
		if p.Acc < 0 || p.Acc > 1 || !finite(p.EOD) {
			t.Fatalf("bad point %+v", p)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "mu") {
		t.Fatal("render missing sweep")
	}
}

func TestRunFig4StructureAndShape(t *testing.T) {
	opt := ciOpts([]string{"nysf"}, nil)
	res := RunFig4(opt)
	if len(res.Variants) != 4 {
		t.Fatalf("variants = %v", res.Variants)
	}
	mf := res.MeanFairness(MetricDDP)
	full := mf["nysf"]["FACTION"]
	bare := mf["nysf"]["FACTION w/o fair select & fair reg"]
	if !finite(full) || !finite(bare) {
		t.Fatal("non-finite ablation fairness")
	}
	// Shape check: the full system should not be less fair than the variant
	// with everything removed (allowing noise slack at CI scale).
	if full > bare+0.05 {
		t.Fatalf("full FACTION DDP %.3f should not exceed bare variant %.3f (+slack)", full, bare)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "w/o fair reg") {
		t.Fatal("render missing variants")
	}
}

func TestRunFig5RuntimeShape(t *testing.T) {
	opt := ciOpts([]string{"rcmnist"}, nil)
	res := RunFig5(opt)
	fa := res.FairAware["rcmnist"]
	if len(fa) != 4 {
		t.Fatalf("fairness-aware methods = %d", len(fa))
	}
	for m, v := range fa {
		if v[0] <= 0 {
			t.Fatalf("%s runtime %g", m, v[0])
		}
	}
	vr := res.Variants["rcmnist"]
	if len(vr) != 5 {
		t.Fatalf("variants = %d", len(vr))
	}
	// The full system does strictly more work than Random selection.
	if vr["FACTION"][0] < vr["Random"][0]*0.8 {
		t.Fatalf("FACTION runtime %.3fs implausibly below Random %.3fs",
			vr["FACTION"][0], vr["Random"][0])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 5a") || !strings.Contains(buf.String(), "Figure 5b") {
		t.Fatal("render incomplete")
	}
}

func TestRunTable1Structure(t *testing.T) {
	opt := ciOpts(nil, nil)
	res := RunTable1(opt)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Model != "Random" || res.Rows[4].Model != "FACTION" {
		t.Fatalf("row order: %v, %v", res.Rows[0].Model, res.Rows[4].Model)
	}
	for _, row := range res.Rows {
		if row.RuntimeSec <= 0 || !finite(row.Acc) || !finite(row.DDP) {
			t.Fatalf("bad row %+v", row)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatal("render missing title")
	}
}

func TestRunFig6Structure(t *testing.T) {
	opt := ciOpts(nil, []string{"FACTION", "Random"})
	res := RunFig6(opt)
	if len(res.Methods) != 2 {
		t.Fatalf("methods = %v", res.Methods)
	}
	if len(res.Hidden) != 3 {
		t.Fatalf("hidden = %v (want the wide 3-layer analog)", res.Hidden)
	}
	for _, metric := range Metrics() {
		for _, s := range res.Panels[metric] {
			if len(s.Mean) != 12 { // celeba has 12 tasks
				t.Fatalf("%s/%s has %d tasks", metric, s.Name, len(s.Mean))
			}
		}
	}
	mo := res.MeanOverTasks(MetricAccuracy)
	if len(mo) != 2 {
		t.Fatal("mean-over-tasks incomplete")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "wide backbone") {
		t.Fatal("render missing title")
	}
}

func TestRunTheory(t *testing.T) {
	opt := ciOpts(nil, nil)
	res := RunTheory(opt)
	if len(res.Ts) != len(res.Regret) || len(res.Ts) != len(res.Violation) {
		t.Fatal("length mismatch")
	}
	for i := range res.Ts {
		if res.Regret[i] < 0 || res.Violation[i] < 0 {
			t.Fatalf("negative cumulative at T=%d", res.Ts[i])
		}
	}
	if len(res.Trials) != len(res.Alphas) {
		t.Fatal("alpha sweep incomplete")
	}
	// Query complexity decreases as α grows (more trials needed for tiny α).
	if res.Trials[0] < res.Trials[len(res.Trials)-1] {
		t.Fatalf("trials should decrease with α: %v", res.Trials)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Theorem 1") {
		t.Fatal("render missing title")
	}
}

func TestFitExponent(t *testing.T) {
	ts := []int{2, 4, 8, 16}
	quad := make([]float64, len(ts))
	for i, T := range ts {
		quad[i] = float64(T * T)
	}
	if got := fitExponent(ts, quad); math.Abs(got-2) > 1e-9 {
		t.Fatalf("exponent = %g, want 2", got)
	}
	sqrt := make([]float64, len(ts))
	for i, T := range ts {
		sqrt[i] = math.Sqrt(float64(T))
	}
	if got := fitExponent(ts, sqrt); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("exponent = %g, want 0.5", got)
	}
	if !math.IsNaN(fitExponent([]int{1, 2}, []float64{0, 0})) {
		t.Fatal("all-zero values should give NaN")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.Scale != ScaleCI || o.Runs != 1 || len(o.Datasets) != 5 || o.Workers <= 0 {
		t.Fatalf("defaults = %+v", o)
	}
	o.Methods = []string{"FACTION"}
	if !o.wantMethod("FACTION") || o.wantMethod("Random") {
		t.Fatal("method filter broken")
	}
}

func TestRunDesignStructure(t *testing.T) {
	opt := ciOpts([]string{"nysf"}, nil)
	res := RunDesign(opt)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 configurations", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !finite(row.Acc) || !finite(row.DDP) || row.RuntimeSec <= 0 {
			t.Fatalf("bad row %+v", row)
		}
		if row.FlipRate < 0 || row.FlipRate > 1 {
			t.Fatalf("flip rate %g out of range", row.FlipRate)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "one-sided hinge") {
		t.Fatal("render missing configurations")
	}
}

func TestCSVTablesAllResults(t *testing.T) {
	opt := ciOpts([]string{"rcmnist"}, []string{"FACTION", "Random"})
	var tablers []Tabler
	tablers = append(tablers, RunFig2(opt))
	tablers = append(tablers, RunFig3(ciOpts([]string{"rcmnist"}, []string{"FACTION"})))
	tablers = append(tablers, RunTheory(ciOpts(nil, nil)))
	for _, tb := range tablers {
		tables := tb.CSVTables()
		if len(tables) == 0 {
			t.Fatalf("%T: no CSV tables", tb)
		}
		for name, table := range tables {
			if len(table.Columns) == 0 || len(table.Rows) == 0 {
				t.Fatalf("%T/%s: empty table", tb, name)
			}
			var buf bytes.Buffer
			if err := table.CSV(&buf); err != nil {
				t.Fatalf("%T/%s: %v", tb, name, err)
			}
			lines := strings.Count(buf.String(), "\n")
			if lines != len(table.Rows)+1 {
				t.Fatalf("%T/%s: %d csv lines for %d rows", tb, name, lines, len(table.Rows))
			}
		}
	}
}

func TestMetricOfPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	metricOf(online.TaskRecord{}, Metric("nope"))
}

func TestTaskSeriesEmptyRuns(t *testing.T) {
	s := taskSeries("x", nil, MetricAccuracy)
	if s.Name != "x" || len(s.Mean) != 0 {
		t.Fatalf("series = %+v", s)
	}
}

func TestTaskSeriesAggregation(t *testing.T) {
	mk := func(accs ...float64) online.RunResult {
		var r online.RunResult
		for _, a := range accs {
			r.Records = append(r.Records, online.TaskRecord{Report: fairness.Report{Accuracy: a}})
		}
		return r
	}
	s := taskSeries("m", []online.RunResult{mk(0.5, 0.7), mk(0.7, 0.9)}, MetricAccuracy)
	if len(s.Mean) != 2 {
		t.Fatalf("tasks = %d", len(s.Mean))
	}
	if math.Abs(s.Mean[0]-0.6) > 1e-12 || math.Abs(s.Mean[1]-0.8) > 1e-12 {
		t.Fatalf("means = %v", s.Mean)
	}
	if s.Std[0] == 0 {
		t.Fatal("std should be nonzero across differing runs")
	}
}

func TestRunGridDeterministic(t *testing.T) {
	opt := ciOpts([]string{"rcmnist"}, []string{"Random"})
	a := RunFig2(opt)
	b := RunFig2(opt)
	for mi := range a.Rows[0].Panels[MetricAccuracy] {
		sa := a.Rows[0].Panels[MetricAccuracy][mi]
		sb := b.Rows[0].Panels[MetricAccuracy][mi]
		for i := range sa.Mean {
			if sa.Mean[i] != sb.Mean[i] {
				t.Fatal("grid runs must be deterministic given the seed")
			}
		}
	}
}

func TestRunTuneSelectsConstrainedBest(t *testing.T) {
	opt := ciOpts([]string{"nysf"}, nil)
	res := RunTune(opt)
	if len(res.Points) != 9 {
		t.Fatalf("grid points = %d", len(res.Points))
	}
	selected := 0
	var chosen TunePoint
	for _, p := range res.Points {
		if p.Selected {
			selected++
			chosen = p
		}
		if !finite(p.Acc) || !finite(p.DDP) {
			t.Fatalf("bad point %+v", p)
		}
	}
	if selected != 1 {
		t.Fatalf("selected = %d, want exactly 1", selected)
	}
	if chosen.Mu != res.BestMu {
		t.Fatal("BestMu disagrees with the selected point")
	}
	// The selection rule: among points meeting the accuracy floor, no point
	// has strictly lower DDP than the chosen one.
	for _, p := range res.Points {
		if p.Acc >= res.AccFloor && p.DDP < chosen.DDP {
			t.Fatalf("point %+v beats the selection", p)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "selected mu") {
		t.Fatal("render missing selection")
	}
	if len(res.CSVTables()) != 1 {
		t.Fatal("csv tables")
	}
}
