package experiments

import (
	"fmt"
	"io"

	"faction/internal/active"
	"faction/internal/online"
	"faction/internal/report"
)

// Fig5Result holds both runtime comparisons: (a) the fairness-aware models
// and (b) FACTION against its ablated variants plus Random.
type Fig5Result struct {
	Datasets []string
	// FairAware maps dataset → method → runtime seconds (mean, std).
	FairAware map[string]map[string][2]float64
	// Variants maps dataset → variant → runtime seconds (mean, std).
	Variants map[string]map[string][2]float64

	FairAwareOrder []string
	VariantOrder   []string
}

// RunFig5 measures wall-clock runtimes of (a) the four fairness-aware methods
// and (b) the FACTION ablation ladder, per dataset (Fig. 5a/5b).
func RunFig5(opt Options) *Fig5Result {
	opt.setDefaults()

	fairAware := func(runSeed int64) []online.MethodSpec {
		return []online.MethodSpec{
			mustMethod("FACTION", runSeed),
			{Name: "FAL", Strategy: active.FAL{L: 128}},
			{Name: "FAL-CUR", Strategy: active.FALCUR{K: 8, Beta: 0.5}},
			{Name: "Decoupled", Strategy: active.Decoupled{Threshold: 0.2, Seed: runSeed}},
		}
	}
	variants := func(runSeed int64) []online.MethodSpec {
		specs := ablationSpecs()
		specs = append(specs, online.MethodSpec{Name: "Random", Strategy: active.Random{}})
		return specs
	}

	res := &Fig5Result{
		Datasets:       opt.Datasets,
		FairAware:      map[string]map[string][2]float64{},
		Variants:       map[string]map[string][2]float64{},
		FairAwareOrder: []string{"FACTION", "FAL", "FAL-CUR", "Decoupled"},
		VariantOrder: []string{
			"Random",
			"FACTION w/o fair select & fair reg",
			"FACTION w/o fair reg",
			"FACTION w/o fair select",
			"FACTION",
		},
	}

	gridA := runGrid(opt, opt.Datasets, fairAware)
	gridB := runGrid(opt, opt.Datasets, variants)
	for _, ds := range opt.Datasets {
		res.FairAware[ds] = map[string][2]float64{}
		for _, m := range res.FairAwareOrder {
			secs := runtimesSeconds(gridA[ds][m])
			res.FairAware[ds][m] = [2]float64{report.Mean(secs), report.Std(secs)}
		}
		res.Variants[ds] = map[string][2]float64{}
		for _, m := range res.VariantOrder {
			secs := runtimesSeconds(gridB[ds][m])
			res.Variants[ds][m] = [2]float64{report.Mean(secs), report.Std(secs)}
		}
	}
	return res
}

func mustMethod(name string, seed int64) online.MethodSpec {
	m, err := online.MethodByName(name, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Render prints the two runtime tables.
func (r *Fig5Result) Render(w io.Writer) {
	a := report.Table{
		Title:   "Figure 5a: runtimes of fairness-aware models (seconds, mean ± std)",
		Columns: append([]string{"method"}, r.Datasets...),
	}
	for _, m := range r.FairAwareOrder {
		row := []string{m}
		for _, ds := range r.Datasets {
			v := r.FairAware[ds][m]
			row = append(row, report.MeanStd(v[0], v[1], 2))
		}
		a.AddRow(row...)
	}
	a.Render(w)
	fmt.Fprintln(w)

	b := report.Table{
		Title:   "Figure 5b: runtimes of FACTION vs ablated variants (seconds, mean ± std)",
		Columns: append([]string{"variant"}, r.Datasets...),
	}
	for _, m := range r.VariantOrder {
		row := []string{m}
		for _, ds := range r.Datasets {
			v := r.Variants[ds][m]
			row = append(row, report.MeanStd(v[0], v[1], 2))
		}
		b.AddRow(row...)
	}
	b.Render(w)
}
