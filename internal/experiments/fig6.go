package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"faction/internal/data"
	"faction/internal/online"
	"faction/internal/report"
	"faction/internal/rngutil"
)

// Fig6Result is the wide-backbone generality check (Fig. 6): all methods on
// the CelebA stream with the WRN-50-analog architecture.
type Fig6Result struct {
	Methods []string
	Hidden  []int
	Panels  map[Metric][]report.Series
}

// RunFig6 repeats the CelebA comparison with the wide backbone applied to
// FACTION and all baselines alike.
func RunFig6(opt Options) *Fig6Result {
	opt.setDefaults()
	opt.Datasets = []string{"celeba"}
	hidden := opt.Scale.WideHidden()

	// runGrid derives the run config from the scale; this experiment patches
	// Hidden, so the grid is run explicitly (parallel across runs × methods).
	type cell struct {
		method string
		run    int
		res    online.RunResult
	}
	var cells []cell
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	for r := 0; r < opt.Runs; r++ {
		runSeed := rngutil.DeriveSeed(opt.Seed, "fig6", fmt.Sprint(r))
		stream := data.CelebA(opt.Scale.StreamConfig(runSeed))
		for _, spec := range online.Methods(runSeed) {
			if !opt.wantMethod(spec.Name) {
				continue
			}
			wg.Add(1)
			go func(spec online.MethodSpec, r int, stream *data.Stream) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cfg := opt.Scale.RunConfig(rngutil.DeriveSeed(opt.Seed, "fig6run", spec.Name, fmt.Sprint(r)))
				cfg.Hidden = hidden
				res := online.MustRun(stream, spec, cfg)
				mu.Lock()
				cells = append(cells, cell{method: spec.Name, run: r, res: res})
				mu.Unlock()
				opt.progressf("done fig6 %-12s run %d (%.1fs)\n", spec.Name, r, res.Elapsed.Seconds())
			}(spec, r, stream)
		}
	}
	wg.Wait()
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].method != cells[b].method {
			return cells[a].method < cells[b].method
		}
		return cells[a].run < cells[b].run
	})
	grid := map[string][]online.RunResult{}
	for _, c := range cells {
		grid[c.method] = append(grid[c.method], c.res)
	}

	out := &Fig6Result{Hidden: hidden, Panels: map[Metric][]report.Series{}}
	for _, name := range online.MethodNames() {
		if opt.wantMethod(name) {
			out.Methods = append(out.Methods, name)
		}
	}
	for _, metric := range Metrics() {
		for _, method := range out.Methods {
			out.Panels[metric] = append(out.Panels[metric], taskSeries(method, grid[method], metric))
		}
	}
	return out
}

// Render prints the wide-backbone panels.
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: CelebA with wide backbone (hidden %v) for all methods\n", r.Hidden)
	for _, metric := range Metrics() {
		fmt.Fprintln(w)
		report.Chart(w, fmt.Sprintf("[celeba/wide] %s per task", metric), r.Panels[metric], 8)
		report.RenderSeries(w, "", r.Panels[metric], 3)
	}
}

// MeanOverTasks returns the mean of a metric over tasks per method.
func (r *Fig6Result) MeanOverTasks(metric Metric) map[string]float64 {
	out := map[string]float64{}
	for i, m := range r.Methods {
		out[m] = report.Mean(r.Panels[metric][i].Mean)
	}
	return out
}
