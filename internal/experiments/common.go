package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"faction/internal/data"
	"faction/internal/mat"
	"faction/internal/online"
	"faction/internal/report"
	"faction/internal/rngutil"
)

// Options configures an experiment runner.
type Options struct {
	// Seed is the base seed; every run derives independent sub-streams.
	Seed int64
	// Runs is the repetition count (0 = the scale's default; the paper
	// reports mean and std over 5).
	Runs int
	// Scale selects protocol size (default ScaleCI).
	Scale Scale
	// Datasets restricts the benchmark streams (default: all five).
	Datasets []string
	// Methods restricts the compared methods by name where applicable.
	Methods []string
	// Workers bounds parallel protocol runs. The default is the shared
	// kernel parallelism (mat.Parallelism(), i.e. GOMAXPROCS — not NumCPU,
	// which oversubscribes under container CPU quotas), so protocol-level
	// and matmul-level parallelism draw from one budget.
	Workers int
	// Progress, when set, receives one line per finished protocol run.
	Progress io.Writer
}

func (o *Options) setDefaults() {
	if o.Scale == "" {
		o.Scale = ScaleCI
	}
	if o.Runs <= 0 {
		o.Runs = o.Scale.DefaultRuns()
	}
	if len(o.Datasets) == 0 {
		o.Datasets = data.StreamNames()
	}
	if o.Workers <= 0 {
		o.Workers = mat.Parallelism()
	}
}

func (o *Options) wantMethod(name string) bool {
	if len(o.Methods) == 0 {
		return true
	}
	for _, m := range o.Methods {
		if m == name {
			return true
		}
	}
	return false
}

func (o *Options) progressf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// gridKey identifies one protocol run in a grid.
type gridKey struct {
	Dataset string
	Method  string
	Run     int
}

// runGrid executes the full (dataset × method × run) grid in parallel.
// mkMethods builds the per-run method list from a derived seed, so stateful
// strategies get independent state per run. Results are keyed by dataset and
// method, with one RunResult per run in run order.
func runGrid(opt Options, datasets []string, mkMethods func(runSeed int64) []online.MethodSpec) map[string]map[string][]online.RunResult {
	type job struct {
		key    gridKey
		stream *data.Stream
		spec   online.MethodSpec
	}
	var jobs []job
	for _, ds := range datasets {
		for r := 0; r < opt.Runs; r++ {
			runSeed := rngutil.DeriveSeed(opt.Seed, "grid", ds, fmt.Sprint(r))
			stream, err := data.ByName(ds, opt.Scale.StreamConfig(runSeed))
			if err != nil {
				panic(err) // datasets are validated by callers
			}
			for _, spec := range mkMethods(runSeed) {
				jobs = append(jobs, job{
					key:    gridKey{Dataset: ds, Method: spec.Name, Run: r},
					stream: stream,
					spec:   spec,
				})
			}
		}
	}

	results := make(map[gridKey]online.RunResult, len(jobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := opt.Scale.RunConfig(rngutil.DeriveSeed(opt.Seed, "run", j.key.Dataset, j.key.Method, fmt.Sprint(j.key.Run)))
			res := online.MustRun(j.stream, j.spec, cfg)
			mu.Lock()
			results[j.key] = res
			mu.Unlock()
			opt.progressf("done %-10s %-36s run %d (%.1fs)\n", j.key.Dataset, j.key.Method, j.key.Run, res.Elapsed.Seconds())
		}(j)
	}
	wg.Wait()

	out := map[string]map[string][]online.RunResult{}
	keys := make([]gridKey, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Dataset != keys[b].Dataset {
			return keys[a].Dataset < keys[b].Dataset
		}
		if keys[a].Method != keys[b].Method {
			return keys[a].Method < keys[b].Method
		}
		return keys[a].Run < keys[b].Run
	})
	for _, k := range keys {
		if out[k.Dataset] == nil {
			out[k.Dataset] = map[string][]online.RunResult{}
		}
		out[k.Dataset][k.Method] = append(out[k.Dataset][k.Method], results[k])
	}
	return out
}

// Metric identifies one of the four reported quantities.
type Metric string

// The reported metrics, in the paper's panel order.
const (
	MetricAccuracy Metric = "Accuracy"
	MetricDDP      Metric = "DDP"
	MetricEOD      Metric = "EOD"
	MetricMI       Metric = "MI"
)

// Metrics lists the four panels in order.
func Metrics() []Metric {
	return []Metric{MetricAccuracy, MetricDDP, MetricEOD, MetricMI}
}

func metricOf(rec online.TaskRecord, m Metric) float64 {
	switch m {
	case MetricAccuracy:
		return rec.Report.Accuracy
	case MetricDDP:
		return rec.Report.DDP
	case MetricEOD:
		return rec.Report.EOD
	case MetricMI:
		return rec.Report.MI
	default:
		panic(fmt.Sprintf("experiments: unknown metric %q", m))
	}
}

// taskSeries aggregates one metric across runs into a per-task mean ± std
// series (one line of a Fig. 2/4/6 panel).
func taskSeries(name string, runs []online.RunResult, m Metric) report.Series {
	if len(runs) == 0 {
		return report.Series{Name: name}
	}
	nTasks := len(runs[0].Records)
	s := report.Series{Name: name, Mean: make([]float64, nTasks), Std: make([]float64, nTasks)}
	vals := make([]float64, 0, len(runs))
	for t := 0; t < nTasks; t++ {
		vals = vals[:0]
		for _, r := range runs {
			if t < len(r.Records) {
				vals = append(vals, metricOf(r.Records[t], m))
			}
		}
		s.Mean[t] = report.Mean(vals)
		s.Std[t] = report.Std(vals)
	}
	return s
}

// meanOverTasks returns the per-run mean of a metric across tasks.
func meanOverTasks(runs []online.RunResult, m Metric) []float64 {
	out := make([]float64, 0, len(runs))
	for _, r := range runs {
		vals := make([]float64, 0, len(r.Records))
		for _, rec := range r.Records {
			vals = append(vals, metricOf(rec, m))
		}
		out = append(out, report.Mean(vals))
	}
	return out
}

// runtimesSeconds extracts the total wall-clock seconds of each run.
func runtimesSeconds(runs []online.RunResult) []float64 {
	out := make([]float64, len(runs))
	for i, r := range runs {
		out[i] = r.Elapsed.Seconds()
	}
	return out
}
