package experiments

import (
	"fmt"
	"io"
	"math"

	"faction/internal/data"
	"faction/internal/faction"
	"faction/internal/online"
	"faction/internal/report"
	"faction/internal/rngutil"
)

// TheoryResult empirically validates Theorem 1 in the stationary setting
// (m = 1, |I_u| = T), where the bounds specialize to sublinear growth:
// R = O(√T) and V = O(T^{1/4}); plus the query-complexity dependence on the
// query-rate parameter α (Bernoulli trials needed per acquisition batch).
type TheoryResult struct {
	// Horizon sweep.
	Ts        []int
	Regret    []float64 // cumulative R(T), averaged over runs
	Violation []float64 // cumulative V(T), averaged over runs
	// Fitted growth exponents of R(T) and V(T) (log–log least squares);
	// sublinear means < 1, with theory predicting ≈0.5 and ≈0.25.
	RegretExponent    float64
	ViolationExponent float64

	// Alpha sweep: Bernoulli trials needed to fill the same total budget.
	Alphas []float64
	Trials []float64
}

// RunTheory runs FACTION on fair-realizable stationary streams of growing
// horizon with a convex model (logistic regression) — the exact setting of
// the Theorem 1 discussion — recording cumulative regret and fairness
// violation, and sweeps α for query complexity. See data.StationaryFair for
// why realizability matters: on a biased stream a fair learner provably
// cannot reach the unconstrained comparator and regret is linear by
// construction.
func RunTheory(opt Options) *TheoryResult {
	opt.setDefaults()
	res := &TheoryResult{}

	switch opt.Scale {
	case ScalePaper:
		res.Ts = []int{4, 8, 16, 32, 64}
	case ScaleSmall:
		res.Ts = []int{4, 8, 16, 32}
	default:
		res.Ts = []int{2, 4, 8}
	}
	res.Alphas = []float64{0.2, 0.5, 1, 3, 10}

	baseCfg := opt.Scale.RunConfig(opt.Seed)
	baseCfg.Linear = true // logistic regression: the convex case of §IV-G
	baseCfg.SpectralNorm = false
	baseCfg.TrackRegret = true
	// Theorem 1 assumes a bounded convex domain Θ; decoupled weight decay is
	// the practical projection keeping the iterates bounded (and the CE
	// calibrated) over long horizons.
	baseCfg.WeightDecay = 1e-3

	for _, T := range res.Ts {
		var regrets, violations []float64
		for r := 0; r < opt.Runs; r++ {
			seed := rngutil.DeriveSeed(opt.Seed, "theory", fmt.Sprint(T), fmt.Sprint(r))
			stream := data.StationaryFair(opt.Scale.StreamConfig(seed), T)
			cfg := baseCfg
			cfg.Seed = seed
			run := online.MustRun(stream, online.FactionSpec(faction.Defaults()), cfg)
			regrets = append(regrets, run.CumulativeRegret())
			violations = append(violations, run.CumulativeViolation())
			opt.progressf("done theory T=%d run %d\n", T, r)
		}
		res.Regret = append(res.Regret, report.Mean(regrets))
		res.Violation = append(res.Violation, report.Mean(violations))
	}
	res.RegretExponent = fitExponent(res.Ts, res.Regret)
	res.ViolationExponent = fitExponent(res.Ts, res.Violation)

	// Query complexity vs α on a fixed stream: smaller α ⇒ more Bernoulli
	// trials to fill the same budget.
	trialStream := data.StationaryFair(opt.Scale.StreamConfig(opt.Seed), 4)
	for _, alpha := range res.Alphas {
		var totals []float64
		for r := 0; r < opt.Runs; r++ {
			o := faction.Defaults()
			o.Alpha = alpha
			strat := faction.New(o)
			spec := online.MethodSpec{Name: fmt.Sprintf("FACTION(alpha=%g)", alpha), Strategy: strat, Fair: o.TrainFairConfig()}
			cfg := baseCfg
			cfg.TrackRegret = false
			cfg.Seed = rngutil.DeriveSeed(opt.Seed, "theory-alpha", fmt.Sprint(alpha), fmt.Sprint(r))
			online.MustRun(trialStream, spec, cfg)
			totals = append(totals, float64(strat.Trials()))
		}
		res.Trials = append(res.Trials, report.Mean(totals))
	}
	return res
}

// fitExponent returns the least-squares slope of log(y) on log(T), ignoring
// non-positive values. NaN when fewer than two usable points exist.
func fitExponent(ts []int, ys []float64) float64 {
	var xs, lys []float64
	for i, t := range ts {
		if ys[i] > 0 {
			xs = append(xs, math.Log(float64(t)))
			lys = append(lys, math.Log(ys[i]))
		}
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	mx, my := report.Mean(xs), report.Mean(lys)
	num, den := 0.0, 0.0
	for i := range xs {
		num += (xs[i] - mx) * (lys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// Render prints the horizon and α sweeps plus the fitted exponents.
func (r *TheoryResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Theorem 1 (stationary): cumulative regret R(T) and fairness violation V(T)",
		Columns: []string{"T", "R(T)", "R(T)/T", "V(T)", "V(T)/T"},
	}
	for i, T := range r.Ts {
		t.AddRow(fmt.Sprint(T),
			report.F(r.Regret[i], 3), report.F(r.Regret[i]/float64(T), 4),
			report.F(r.Violation[i], 3), report.F(r.Violation[i]/float64(T), 4))
	}
	t.Render(w)
	fmt.Fprintf(w, "fitted growth exponents: regret %.2f (theory ≈ 0.5), violation %.2f (theory ≈ 0.25); sublinear < 1\n\n",
		r.RegretExponent, r.ViolationExponent)

	a := report.Table{
		Title:   "Query complexity vs α (Bernoulli trials to fill the budget; ∝ 1/α shape)",
		Columns: []string{"alpha", "trials"},
	}
	for i, alpha := range r.Alphas {
		a.AddRow(report.F(alpha, 2), report.F(r.Trials[i], 0))
	}
	a.Render(w)
}
