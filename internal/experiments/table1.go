package experiments

import (
	"io"

	"faction/internal/active"
	"faction/internal/online"
	"faction/internal/report"
)

// Table1Row is one row of Table I: a FACTION variant's runtime and
// mean-across-tasks metrics on the NYSF stream.
type Table1Row struct {
	Model      string
	RuntimeSec float64
	RuntimeStd float64
	Acc        float64
	DDP        float64
	EOD        float64
	MI         float64
}

// Table1Result reproduces Table I (NYSF ablation summary).
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 runs the five Table I configurations on the NYSF stream and
// reports runtime plus mean-across-tasks Accuracy/DDP/EOD/MI.
func RunTable1(opt Options) *Table1Result {
	opt.setDefaults()
	opt.Datasets = []string{"nysf"}
	order := []string{
		"Random",
		"FACTION w/o fair select & fair reg",
		"FACTION w/o fair reg",
		"FACTION w/o fair select",
		"FACTION",
	}
	mkMethods := func(runSeed int64) []online.MethodSpec {
		specs := []online.MethodSpec{{Name: "Random", Strategy: active.Random{}}}
		return append(specs, ablationSpecs()...)
	}
	grid := runGrid(opt, opt.Datasets, mkMethods)

	res := &Table1Result{}
	for _, name := range order {
		runs := grid["nysf"][name]
		secs := runtimesSeconds(runs)
		res.Rows = append(res.Rows, Table1Row{
			Model:      name,
			RuntimeSec: report.Mean(secs),
			RuntimeStd: report.Std(secs),
			Acc:        report.Mean(meanOverTasks(runs, MetricAccuracy)),
			DDP:        report.Mean(meanOverTasks(runs, MetricDDP)),
			EOD:        report.Mean(meanOverTasks(runs, MetricEOD)),
			MI:         report.Mean(meanOverTasks(runs, MetricMI)),
		})
	}
	return res
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render(w io.Writer) {
	t := report.Table{
		Title:   "Table I: FACTION vs ablated variants on NYSF (mean across all tasks)",
		Columns: []string{"Model", "Runtime(s)", "Acc(↑)", "DDP(↓)", "EOD(↓)", "MI(↓)"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Model,
			report.MeanStd(row.RuntimeSec, row.RuntimeStd, 1),
			report.F(row.Acc*100, 2),
			report.F(row.DDP, 3),
			report.F(row.EOD, 3),
			report.F(row.MI, 3),
		)
	}
	t.Render(w)
}
