package experiments

import (
	"fmt"
	"io"

	"faction/internal/online"
	"faction/internal/report"
)

// PanelSet is one dataset row of Fig. 2: per-task curves of the four metrics
// for every compared method.
type PanelSet struct {
	Dataset string
	// Panels maps metric → one series per method.
	Panels map[Metric][]report.Series
}

// Fig2Result is the full main comparison (Fig. 2): Accuracy/DDP/EOD/MI
// per-task curves on all five datasets for all eight methods.
type Fig2Result struct {
	Datasets []string
	Methods  []string
	Rows     []PanelSet
}

// RunFig2 executes the Fig. 2 grid: every method on every dataset, Runs
// times, reporting per-task mean ± std curves.
func RunFig2(opt Options) *Fig2Result {
	opt.setDefaults()
	mkMethods := func(runSeed int64) []online.MethodSpec {
		var out []online.MethodSpec
		for _, m := range online.Methods(runSeed) {
			if opt.wantMethod(m.Name) {
				out = append(out, m)
			}
		}
		return out
	}
	grid := runGrid(opt, opt.Datasets, mkMethods)

	res := &Fig2Result{Datasets: opt.Datasets}
	for _, name := range online.MethodNames() {
		if opt.wantMethod(name) {
			res.Methods = append(res.Methods, name)
		}
	}
	for _, ds := range opt.Datasets {
		row := PanelSet{Dataset: ds, Panels: map[Metric][]report.Series{}}
		for _, metric := range Metrics() {
			for _, method := range res.Methods {
				row.Panels[metric] = append(row.Panels[metric], taskSeries(method, grid[ds][method], metric))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints every panel as a per-task table, mirroring the figure's
// 5×4 grid of plots.
func (r *Fig2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 2: per-task metrics, %d methods × %d datasets\n", len(r.Methods), len(r.Datasets))
	fmt.Fprintf(w, "(higher is better for Accuracy; lower is better for DDP/EOD/MI)\n\n")
	for _, row := range r.Rows {
		for _, metric := range Metrics() {
			report.Chart(w, fmt.Sprintf("[%s] %s per task", row.Dataset, metric), row.Panels[metric], 10)
			fmt.Fprintln(w)
			report.RenderSeries(w, "", row.Panels[metric], 3)
			fmt.Fprintln(w)
		}
	}
	r.SummaryTable().Render(w)
	fmt.Fprintln(w)
	for _, metric := range []Metric{MetricDDP, MetricEOD, MetricMI} {
		wins := r.FairnessWinRate("FACTION", metric)
		for _, ds := range r.Datasets {
			if rate, ok := wins[ds]; ok {
				fmt.Fprintf(w, "FACTION best %s on %.0f%% of %s tasks\n", metric, rate*100, ds)
			}
		}
	}
}

// SummaryTable condenses Fig. 2 into mean-over-tasks values per dataset and
// method (one row per method, metric columns) — the quick textual check of
// "who wins".
func (r *Fig2Result) SummaryTable() *report.Table {
	t := &report.Table{
		Title:   "Figure 2 summary: mean over tasks (Accuracy↑ / DDP↓ / EOD↓ / MI↓)",
		Columns: []string{"dataset", "method", "Accuracy", "DDP", "EOD", "MI"},
	}
	for _, row := range r.Rows {
		for mi, method := range r.Methods {
			cells := []string{row.Dataset, method}
			for _, metric := range Metrics() {
				s := row.Panels[metric][mi]
				cells = append(cells, report.F(report.Mean(s.Mean), 3))
			}
			t.AddRow(cells...)
		}
	}
	return t
}

// FairnessWinRate returns, per dataset, the fraction of tasks on which the
// named method attains the best (lowest) value of the given fairness metric
// among all compared methods — the paper's "majority of tasks" claim.
func (r *Fig2Result) FairnessWinRate(method string, metric Metric) map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		series := row.Panels[metric]
		var target *report.Series
		for i := range series {
			if series[i].Name == method {
				target = &series[i]
			}
		}
		if target == nil || len(target.Mean) == 0 {
			continue
		}
		wins := 0
		for t := range target.Mean {
			best := true
			for i := range series {
				if series[i].Name == method || t >= len(series[i].Mean) {
					continue
				}
				if series[i].Mean[t] < target.Mean[t] {
					best = false
					break
				}
			}
			if best {
				wins++
			}
		}
		out[row.Dataset] = float64(wins) / float64(len(target.Mean))
	}
	return out
}
