// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section V): Fig. 2 (main comparison), Fig. 3
// (fairness–accuracy trade-off sweeps), Fig. 4 (ablations), Fig. 5
// (runtimes), Table I (NYSF ablation summary), Fig. 6 (wide-backbone CelebA)
// and the empirical validation of Theorem 1. Each runner executes the online
// protocol grid — datasets × methods × repeated runs — in parallel and
// aggregates mean ± std statistics, rendering the same rows/series the paper
// reports.
package experiments

import (
	"fmt"

	"faction/internal/data"
	"faction/internal/online"
)

// Scale selects how close a run is to the paper's protocol. The shapes of
// all results are expected to hold at every scale; the paper scale matches
// Section V-A3 (B=200, A=50, warm start 100, hidden width 512, pools ≥ 10×B).
type Scale string

// Supported scales.
const (
	// ScaleCI is small enough for test suites and `go test -bench`.
	ScaleCI Scale = "ci"
	// ScaleSmall is a laptop-minutes configuration with clearer separation.
	ScaleSmall Scale = "small"
	// ScalePaper reproduces the protocol constants of Section V.
	ScalePaper Scale = "paper"
)

// ParseScale validates a scale name.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case ScaleCI, ScaleSmall, ScalePaper:
		return Scale(s), nil
	}
	return "", fmt.Errorf("experiments: unknown scale %q (want ci, small or paper)", s)
}

// StreamConfig returns the dataset-generation parameters for the scale.
func (s Scale) StreamConfig(seed int64) data.StreamConfig {
	switch s {
	case ScaleSmall:
		return data.StreamConfig{Seed: seed, SamplesPerTask: 500}
	case ScalePaper:
		return data.StreamConfig{Seed: seed, SamplesPerTask: 2200}
	default:
		return data.StreamConfig{Seed: seed, SamplesPerTask: 130}
	}
}

// RunConfig returns the protocol parameters for the scale.
func (s Scale) RunConfig(seed int64) online.Config {
	cfg := online.DefaultConfig(seed)
	switch s {
	case ScaleSmall:
		cfg.Budget = 100
		cfg.AcqSize = 50
		cfg.WarmStart = 60
		cfg.Epochs = 10
		cfg.Hidden = []int{64}
	case ScalePaper:
		cfg.Budget = 200
		cfg.AcqSize = 50
		cfg.WarmStart = 100
		cfg.Epochs = 15
		cfg.Hidden = []int{512}
	default: // ScaleCI
		cfg.Budget = 40
		cfg.AcqSize = 20
		cfg.WarmStart = 40
		cfg.Epochs = 5
		cfg.Hidden = []int{32}
	}
	return cfg
}

// WideHidden returns the WRN-50-analog architecture for Fig. 6 at this scale.
func (s Scale) WideHidden() []int {
	switch s {
	case ScaleSmall:
		return []int{128, 128, 128}
	case ScalePaper:
		return []int{1024, 1024, 1024}
	default:
		return []int{64, 64, 64}
	}
}

// DefaultRuns is the repetition count per scale (the paper uses 5 runs).
func (s Scale) DefaultRuns() int {
	switch s {
	case ScaleSmall:
		return 3
	case ScalePaper:
		return 5
	default:
		return 1
	}
}
