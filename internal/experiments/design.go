package experiments

import (
	"fmt"
	"io"

	"faction/internal/data"
	"faction/internal/faction"
	"faction/internal/fairness"
	"faction/internal/gda"
	"faction/internal/nn"
	"faction/internal/online"
	"faction/internal/report"
	"faction/internal/rngutil"
)

// DesignRow is one configuration of the design-choice ablation.
type DesignRow struct {
	Name       string
	Acc        float64
	DDP        float64
	EOD        float64
	MI         float64
	FlipRate   float64 // counterfactual flip rate on the final task
	RuntimeSec float64
}

// DesignResult is the design-choice ablation of DESIGN.md §5: it isolates
// the implementation decisions this reproduction makes on top of the paper's
// algorithm — the symmetric vs one-sided fairness hinge, the DDP vs DEO
// notion, spectral normalization, GDA covariance shrinkage, and the optional
// individual-fairness penalty — and reports their effect on the NYSF-analog
// protocol plus the counterfactual flip rate on the RC-MNIST analog.
type DesignResult struct {
	Dataset string
	Rows    []DesignRow
}

// designConfigs enumerates the compared configurations.
func designConfigs() []struct {
	Name  string
	Opts  func() faction.Options
	Patch func(cfg *online.Config)
} {
	base := faction.Defaults
	return []struct {
		Name  string
		Opts  func() faction.Options
		Patch func(cfg *online.Config)
	}{
		{Name: "default (symmetric hinge, DDP, spectral, auto shrinkage)", Opts: base},
		{
			Name: "one-sided hinge [v]+ (paper literal)",
			Opts: func() faction.Options { o := base(); o.OneSided = true; return o },
		},
		{
			Name: "DEO notion in the regularizer",
			Opts: func() faction.Options { o := base(); o.Mode = nn.ModeDEO; return o },
		},
		{
			Name:  "no spectral normalization",
			Opts:  base,
			Patch: func(cfg *online.Config) { cfg.SpectralNorm = false },
		},
		{
			Name: "no GDA covariance shrinkage",
			Opts: func() faction.Options { o := base(); o.GDA = gda.Config{Shrinkage: 0}; return o },
		},
		{
			Name: "+ individual-fairness penalty (§IV-H)",
			Opts: func() faction.Options {
				o := base()
				o.IndividualMu = 0.5
				o.IndividualSigma = 2
				return o
			},
		},
	}
}

// RunDesign executes the design ablation. The first dataset in opt.Datasets
// (default "nysf") hosts the protocol metrics; the counterfactual flip rate
// is always measured on the RC-MNIST analog (its counterfactuals flip the
// color channel).
func RunDesign(opt Options) *DesignResult {
	opt.setDefaults()
	dataset := "nysf"
	if len(opt.Datasets) > 0 && len(opt.Datasets) < len(data.StreamNames()) {
		dataset = opt.Datasets[0]
	}
	res := &DesignResult{Dataset: dataset}
	for _, dc := range designConfigs() {
		var accs, ddps, eods, mis, secs, flips []float64
		for r := 0; r < opt.Runs; r++ {
			seed := rngutil.DeriveSeed(opt.Seed, "design", dc.Name, fmt.Sprint(r))
			stream, err := data.ByName(dataset, opt.Scale.StreamConfig(seed))
			if err != nil {
				panic(err)
			}
			cfg := opt.Scale.RunConfig(seed)
			if dc.Patch != nil {
				dc.Patch(&cfg)
			}
			spec := online.FactionSpec(dc.Opts())
			spec.Name = dc.Name
			run := online.MustRun(stream, spec, cfg)
			mean := run.MeanReport()
			accs = append(accs, mean.Accuracy)
			ddps = append(ddps, mean.DDP)
			eods = append(eods, mean.EOD)
			mis = append(mis, mean.MI)
			secs = append(secs, run.Elapsed.Seconds())
			flips = append(flips, designFlipRate(dc, opt, seed))
			opt.progressf("done design %-48s run %d\n", dc.Name, r)
		}
		res.Rows = append(res.Rows, DesignRow{
			Name:       dc.Name,
			Acc:        report.Mean(accs),
			DDP:        report.Mean(ddps),
			EOD:        report.Mean(eods),
			MI:         report.Mean(mis),
			FlipRate:   report.Mean(flips),
			RuntimeSec: report.Mean(secs),
		})
	}
	return res
}

// designFlipRate trains one model on the RC-MNIST analog under the
// configuration's loss and measures the counterfactual flip rate.
func designFlipRate(dc struct {
	Name  string
	Opts  func() faction.Options
	Patch func(cfg *online.Config)
}, opt Options, seed int64) float64 {
	stream := data.RotatedColoredMNIST(opt.Scale.StreamConfig(seed))
	union := data.NewDataset("union", stream.Dim, stream.Classes)
	for _, task := range stream.Tasks[:6] {
		union.Samples = append(union.Samples, task.Pool.Samples...)
	}
	cfg := opt.Scale.RunConfig(seed)
	if dc.Patch != nil {
		dc.Patch(&cfg)
	}
	model := nn.NewClassifier(nn.Config{
		InputDim: stream.Dim, NumClasses: stream.Classes,
		Hidden: cfg.Hidden, SpectralNorm: cfg.SpectralNorm, SpectralCoeff: cfg.SpectralCoeff,
		Seed: seed,
	})
	rng := rngutil.New(seed)
	model.Train(union.Matrix(), union.Labels(), union.Sensitive(), nn.NewAdam(cfg.LR), nn.TrainOpts{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, Fair: dc.Opts().TrainFairConfig(),
	}, rng)
	last := stream.Tasks[5].Pool
	cf := data.NewDataset("cf", stream.Dim, stream.Classes)
	for _, smp := range last.Samples {
		cf.Append(stream.Counterfactual(smp))
	}
	return fairness.FlipRate(model.PredictClasses(last.Matrix()), model.PredictClasses(cf.Matrix()))
}

// Render prints the design ablation table.
func (r *DesignResult) Render(w io.Writer) {
	t := report.Table{
		Title: fmt.Sprintf("Design-choice ablation on %s (flip rate on rcmnist counterfactuals)", r.Dataset),
		Columns: []string{
			"configuration", "Acc(↑)", "DDP(↓)", "EOD(↓)", "MI(↓)", "CF-flip(↓)", "Runtime(s)",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			report.F(row.Acc, 3), report.F(row.DDP, 3), report.F(row.EOD, 3),
			report.F(row.MI, 4), report.F(row.FlipRate, 3), report.F(row.RuntimeSec, 2))
	}
	t.Render(w)
}
