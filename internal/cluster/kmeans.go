// Package cluster provides k-means++ clustering and a fairlet-based fair
// clustering variant. It is the substrate for the FAL-CUR baseline
// (Fajri et al. 2024), which selects uncertain-and-representative samples
// from sensitive-balanced clusters.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"faction/internal/mat"
)

// Result is a clustering of the rows of the input matrix.
type Result struct {
	K          int
	Centers    *mat.Dense // K×d
	Assign     []int      // cluster index per row
	Iterations int
}

// Counts returns the cluster sizes.
func (r *Result) Counts() []int {
	counts := make([]int, r.K)
	for _, c := range r.Assign {
		counts[c]++
	}
	return counts
}

// Members returns the row indices assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// kmeansPPInit picks k initial centers with the k-means++ D² weighting.
func kmeansPPInit(rng *rand.Rand, x *mat.Dense, k int) *mat.Dense {
	n := x.Rows
	centers := mat.NewDense(k, x.Cols)
	first := rng.Intn(n)
	copy(centers.Row(0), x.Row(first))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(x.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, v := range d2 {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			u := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, v := range d2 {
				acc += v
				if u < acc {
					pick = i
					break
				}
			}
		}
		copy(centers.Row(c), x.Row(pick))
		for i := range d2 {
			if d := sqDist(x.Row(i), centers.Row(c)); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// KMeans clusters the rows of x into k clusters using k-means++ seeding and
// Lloyd iterations (at most maxIter, default 50). k is clamped to the number
// of rows.
func KMeans(rng *rand.Rand, x *mat.Dense, k, maxIter int) Result {
	n := x.Rows
	if n == 0 {
		panic("cluster: empty input")
	}
	if k <= 0 {
		panic(fmt.Sprintf("cluster: k = %d", k))
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	centers := kmeansPPInit(rng, x, k)
	assign := make([]int, n)
	counts := make([]int, k)
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := sqDist(x.Row(i), centers.Row(c)); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iters > 0 {
			break
		}
		centers.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			mat.AxpyVec(centers.Row(c), 1, x.Row(i))
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centers.Row(c), x.Row(rng.Intn(n)))
				continue
			}
			mat.ScaleVec(centers.Row(c), 1/float64(counts[c]))
		}
	}
	return Result{K: k, Centers: centers, Assign: assign, Iterations: iters}
}

// Inertia returns the within-cluster sum of squared distances.
func Inertia(x *mat.Dense, r Result) float64 {
	total := 0.0
	for i := 0; i < x.Rows; i++ {
		total += sqDist(x.Row(i), r.Centers.Row(r.Assign[i]))
	}
	return total
}

// Balance returns the sensitive balance of a clustering: the minimum over
// clusters of min(n₊/n₋, n₋/n₊), where n± are the per-cluster group counts
// (Chierichetti et al. 2017). 1 is perfectly balanced; 0 means some cluster
// is single-group. Empty clusters are skipped.
func Balance(r Result, s []int) float64 {
	if len(s) != len(r.Assign) {
		panic(fmt.Sprintf("cluster: %d sensitive values for %d assignments", len(s), len(r.Assign)))
	}
	pos := make([]float64, r.K)
	neg := make([]float64, r.K)
	for i, c := range r.Assign {
		if s[i] == 1 {
			pos[c]++
		} else {
			neg[c]++
		}
	}
	balance := math.Inf(1)
	for c := 0; c < r.K; c++ {
		if pos[c]+neg[c] == 0 {
			continue
		}
		if pos[c] == 0 || neg[c] == 0 {
			return 0
		}
		b := math.Min(pos[c]/neg[c], neg[c]/pos[c])
		if b < balance {
			balance = b
		}
	}
	if math.IsInf(balance, 1) {
		return 0
	}
	return balance
}

// FairKMeans clusters with a fairlet-style preprocessing: each s=+1 point is
// greedily matched to its nearest unmatched s=−1 point; each matched pair
// (fairlet) is then clustered by its midpoint, and both members inherit the
// fairlet's cluster. Leftover unmatched points are assigned to their nearest
// resulting center. This guarantees that matched pairs — one from each group
// — always land in the same cluster, which substantially improves Balance on
// group-separable data.
func FairKMeans(rng *rand.Rand, x *mat.Dense, s []int, k, maxIter int) Result {
	n := x.Rows
	if len(s) != n {
		panic(fmt.Sprintf("cluster: %d sensitive values for %d rows", len(s), n))
	}
	if n == 0 {
		panic("cluster: empty input")
	}
	var posIdx, negIdx []int
	for i, v := range s {
		if v == 1 {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	if len(posIdx) == 0 || len(negIdx) == 0 {
		return KMeans(rng, x, k, maxIter) // single group: fairness is moot
	}
	// Greedy nearest matching from the smaller group into the larger.
	small, large := posIdx, negIdx
	if len(negIdx) < len(posIdx) {
		small, large = negIdx, posIdx
	}
	used := make([]bool, len(large))
	type fairlet struct{ a, b int }
	fairlets := make([]fairlet, 0, len(small))
	for _, i := range small {
		best, bestD := -1, math.Inf(1)
		for j, cand := range large {
			if used[j] {
				continue
			}
			if d := sqDist(x.Row(i), x.Row(cand)); d < bestD {
				best, bestD = j, d
			}
		}
		used[best] = true
		fairlets = append(fairlets, fairlet{a: i, b: large[best]})
	}
	// Cluster fairlet midpoints.
	mids := mat.NewDense(len(fairlets), x.Cols)
	for fi, f := range fairlets {
		ra, rb := x.Row(f.a), x.Row(f.b)
		row := mids.Row(fi)
		for j := range row {
			row[j] = (ra[j] + rb[j]) / 2
		}
	}
	inner := KMeans(rng, mids, k, maxIter)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for fi, f := range fairlets {
		assign[f.a] = inner.Assign[fi]
		assign[f.b] = inner.Assign[fi]
	}
	// Unmatched leftovers of the larger group: nearest center.
	for i := range assign {
		if assign[i] >= 0 {
			continue
		}
		best, bestD := 0, math.Inf(1)
		for c := 0; c < inner.K; c++ {
			if d := sqDist(x.Row(i), inner.Centers.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return Result{K: inner.K, Centers: inner.Centers, Assign: assign, Iterations: inner.Iterations}
}
