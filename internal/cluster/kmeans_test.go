package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"faction/internal/mat"
)

// twoBlobs builds two well-separated clusters of nPer points each.
func twoBlobs(rng *rand.Rand, nPer int) *mat.Dense {
	x := mat.NewDense(2*nPer, 2)
	for i := 0; i < nPer; i++ {
		x.Set(i, 0, -5+rng.NormFloat64()*0.4)
		x.Set(i, 1, rng.NormFloat64()*0.4)
		x.Set(nPer+i, 0, 5+rng.NormFloat64()*0.4)
		x.Set(nPer+i, 1, rng.NormFloat64()*0.4)
	}
	return x
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := twoBlobs(rng, 50)
	r := KMeans(rng, x, 2, 0)
	// Every point in the first blob shares a cluster; likewise the second,
	// and they differ.
	c0 := r.Assign[0]
	for i := 1; i < 50; i++ {
		if r.Assign[i] != c0 {
			t.Fatal("first blob split across clusters")
		}
	}
	c1 := r.Assign[50]
	if c1 == c0 {
		t.Fatal("blobs merged")
	}
	for i := 51; i < 100; i++ {
		if r.Assign[i] != c1 {
			t.Fatal("second blob split across clusters")
		}
	}
	// Centers near ±5.
	lo, hi := r.Centers.At(c0, 0), r.Centers.At(c1, 0)
	if math.Abs(lo+5) > 0.5 || math.Abs(hi-5) > 0.5 {
		t.Fatalf("centers %g, %g", lo, hi)
	}
}

func TestKMeansKClampedToN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := mat.FromRows([][]float64{{0, 0}, {1, 1}})
	r := KMeans(rng, x, 10, 0)
	if r.K != 2 {
		t.Fatalf("k = %d, want clamped to 2", r.K)
	}
}

func TestKMeansPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { KMeans(rng, mat.NewDense(0, 2), 2, 0) })
	mustPanic(func() { KMeans(rng, mat.NewDense(2, 2), 0, 0) })
}

func TestCountsAndMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := twoBlobs(rng, 10)
	r := KMeans(rng, x, 2, 0)
	counts := r.Counts()
	if counts[0]+counts[1] != 20 {
		t.Fatalf("counts = %v", counts)
	}
	if len(r.Members(0)) != counts[0] {
		t.Fatal("Members disagrees with Counts")
	}
}

func TestInertiaDecreasingInK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := mat.NewDense(60, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	i2 := Inertia(x, KMeans(rng, x, 2, 0))
	i8 := Inertia(x, KMeans(rng, x, 8, 0))
	if i8 >= i2 {
		t.Fatalf("inertia k=8 (%g) should be below k=2 (%g)", i8, i2)
	}
}

func TestBalancePerfect(t *testing.T) {
	r := Result{K: 2, Assign: []int{0, 0, 1, 1}}
	s := []int{1, -1, 1, -1}
	if b := Balance(r, s); b != 1 {
		t.Fatalf("balance = %g, want 1", b)
	}
}

func TestBalanceSingleGroupCluster(t *testing.T) {
	r := Result{K: 2, Assign: []int{0, 0, 1, 1}}
	s := []int{1, 1, 1, -1}
	if b := Balance(r, s); b != 0 {
		t.Fatalf("balance = %g, want 0", b)
	}
}

func TestBalanceSkipsEmptyClusters(t *testing.T) {
	r := Result{K: 3, Assign: []int{0, 0}}
	s := []int{1, -1}
	if b := Balance(r, s); b != 1 {
		t.Fatalf("balance = %g, want 1", b)
	}
}

// TestFairKMeansImprovesBalance uses data where groups are spatially
// separated, which makes plain k-means produce single-group clusters while
// fairlet matching keeps pairs together.
func TestFairKMeansImprovesBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 40
	x := mat.NewDense(2*n, 2)
	s := make([]int, 2*n)
	for i := 0; i < n; i++ {
		// Group +1 on the left, group −1 on the right.
		x.Set(i, 0, -3+rng.NormFloat64()*0.3)
		x.Set(i, 1, rng.NormFloat64())
		s[i] = 1
		x.Set(n+i, 0, 3+rng.NormFloat64()*0.3)
		x.Set(n+i, 1, rng.NormFloat64())
		s[n+i] = -1
	}
	plain := KMeans(rand.New(rand.NewSource(7)), x, 2, 0)
	fair := FairKMeans(rand.New(rand.NewSource(7)), x, s, 2, 0)
	if Balance(plain, s) != 0 {
		t.Fatalf("test setup: plain k-means balance %g, expected 0", Balance(plain, s))
	}
	if b := Balance(fair, s); b < 0.9 {
		t.Fatalf("fair k-means balance %g, want ≥ 0.9", b)
	}
}

func TestFairKMeansSingleGroupFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := twoBlobs(rng, 10)
	s := make([]int, 20)
	for i := range s {
		s[i] = 1
	}
	r := FairKMeans(rng, x, s, 2, 0)
	if len(r.Assign) != 20 {
		t.Fatal("fallback clustering incomplete")
	}
}

func TestFairKMeansUnevenGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := mat.NewDense(30, 2)
	s := make([]int, 30)
	for i := 0; i < 30; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		if i < 10 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	r := FairKMeans(rng, x, s, 3, 0)
	for _, a := range r.Assign {
		if a < 0 || a >= r.K {
			t.Fatalf("invalid assignment %d", a)
		}
	}
}

// Property: every assignment is a valid cluster index and counts sum to n.
func TestKMeansAssignValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		d := 1 + r.Intn(4)
		k := 1 + r.Intn(6)
		x := mat.NewDense(n, d)
		for i := range x.Data {
			x.Data[i] = r.NormFloat64()
		}
		res := KMeans(r, x, k, 20)
		total := 0
		for _, c := range res.Counts() {
			total += c
		}
		if total != n {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= res.K {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := mat.NewDense(500, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(rng, x, 8, 25)
	}
}
