package online

import (
	"fmt"

	"faction/internal/active"
	"faction/internal/faction"
)

// FactionSpec builds the MethodSpec for a FACTION variant: its query
// strategy plus the matching training-time regularization.
func FactionSpec(opts faction.Options) MethodSpec {
	s := faction.New(opts)
	return MethodSpec{Name: s.Name(), Strategy: s, Fair: s.Options().TrainFairConfig()}
}

// Methods returns the paper's eight compared methods (Section V-A2) with
// their default hyperparameters: FACTION plus the seven adapted baselines.
func Methods(seed int64) []MethodSpec {
	return []MethodSpec{
		FactionSpec(faction.Defaults()),
		{Name: "FAL", Strategy: active.FAL{L: 128}},
		{Name: "FAL-CUR", Strategy: active.FALCUR{K: 8, Beta: 0.5}},
		{Name: "Decoupled", Strategy: active.Decoupled{Threshold: 0.2, Seed: seed}},
		{Name: "QuFUR", Strategy: active.QuFUR{Alpha: 1}},
		{Name: "DDU", Strategy: active.DDU{}},
		{Name: "Entropy-AL", Strategy: active.EntropyAL{}},
		{Name: "Random", Strategy: active.Random{}},
	}
}

// MethodNames lists the canonical method names in the paper's order.
func MethodNames() []string {
	return []string{"FACTION", "FAL", "FAL-CUR", "Decoupled", "QuFUR", "DDU", "Entropy-AL", "Random"}
}

// MethodByName resolves a canonical method name (see MethodNames) plus the
// FACTION ablation names of Fig. 4 / Table I.
func MethodByName(name string, seed int64) (MethodSpec, error) {
	for _, m := range Methods(seed) {
		if m.Name == name {
			return m, nil
		}
	}
	mkVariant := func(sel, reg bool) MethodSpec {
		o := faction.Defaults()
		o.FairSelect = sel
		o.FairReg = reg
		return FactionSpec(o)
	}
	switch name {
	case "FACTION w/o fair select":
		return mkVariant(false, true), nil
	case "FACTION w/o fair reg":
		return mkVariant(true, false), nil
	case "FACTION w/o fair select & fair reg":
		return mkVariant(false, false), nil
	case "Margin":
		return MethodSpec{Name: "Margin", Strategy: active.Margin{}}, nil
	case "Coreset":
		return MethodSpec{Name: "Coreset", Strategy: active.Coreset{}}, nil
	case "BALD":
		return MethodSpec{Name: "BALD", Strategy: active.BALD{Samples: 10}}, nil
	}
	return MethodSpec{}, fmt.Errorf("online: unknown method %q (want one of %v)", name, MethodNames())
}
