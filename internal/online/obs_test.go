package online

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"

	"faction/internal/active"
	"faction/internal/obs"
)

// failAfterWriter fails every write after the first n.
type failAfterWriter struct {
	n      int
	writes int
}

var errWriterBroken = errors.New("writer broken")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, errWriterBroken
	}
	return len(p), nil
}

func TestTraceWriteErrorSurfaced(t *testing.T) {
	cfg := tinyConfig(71)
	cfg.Metrics = obs.NewRegistry()
	cfg.Trace = &failAfterWriter{n: 1}
	res := MustRun(tinyStream(72), MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)
	if len(res.Records) != 3 {
		t.Fatalf("records = %d: a broken trace writer must not abort the run", len(res.Records))
	}
	if !errors.Is(res.TraceErr, errWriterBroken) {
		t.Fatalf("TraceErr = %v, want the writer's error surfaced", res.TraceErr)
	}
}

func TestTraceErrNilOnHealthyWriter(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(73)
	cfg.Metrics = obs.NewRegistry()
	cfg.Trace = &buf
	res := MustRun(tinyStream(74), MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)
	if res.TraceErr != nil {
		t.Fatalf("TraceErr = %v on a healthy writer", res.TraceErr)
	}
}

func TestRunExportsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := tinyConfig(75)
	cfg.Metrics = reg
	res := MustRun(tinyStream(76), MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"faction_online_tasks_total 3",
		"faction_online_queries_total " + strconv.Itoa(res.TotalQueries),
		"faction_online_budget_spent " + strconv.Itoa(res.TotalQueries),
		"faction_online_cumulative_regret",
		"faction_online_cumulative_violation",
		"faction_online_last_accuracy",
		`faction_online_stage_seconds_count{stage="train"}`,
		`faction_online_stage_seconds_count{stage="select"}`,
		`faction_online_stage_seconds_count{stage="eval"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestRunRecordsSpans(t *testing.T) {
	tr := obs.NewTracer(256)
	cfg := tinyConfig(77)
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = tr
	MustRun(tinyStream(78), MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)

	byName := map[string]int{}
	taskTraces := map[uint64]bool{}
	for _, s := range tr.Spans() {
		byName[s.Name]++
		if s.Name == "online.task" {
			taskTraces[s.TraceID] = true
			if s.Parent != 0 {
				t.Fatalf("online.task span has parent %d, want a root span", s.Parent)
			}
		}
	}
	if byName["online.task"] != 3 {
		t.Fatalf("online.task spans = %d, want one per task", byName["online.task"])
	}
	if len(taskTraces) != 3 {
		t.Fatalf("distinct task traces = %d, want 3", len(taskTraces))
	}
	for _, stage := range []string{"online.eval", "online.train", "online.select", "online.fairness"} {
		if byName[stage] == 0 {
			t.Errorf("no %s spans recorded", stage)
		}
	}
	if byName["online.warmstart"] != 1 {
		t.Errorf("online.warmstart spans = %d, want exactly one (first task)", byName["online.warmstart"])
	}
}

func TestNilTracerRunIsQuiet(t *testing.T) {
	// A run without a Tracer must not leak spans into the default tracer.
	before := obs.DefaultTracer().Len()
	cfg := tinyConfig(79)
	cfg.Metrics = obs.NewRegistry()
	MustRun(tinyStream(80), MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)
	if after := obs.DefaultTracer().Len(); after != before {
		t.Fatalf("default tracer grew from %d to %d spans during an untraced run", before, after)
	}
}
