package online

import (
	"faction/internal/obs"
	"faction/internal/obs/history"
)

// Metrics is the online protocol's instrumentation set: the live /metrics
// view of Algorithm 1's bookkeeping — cumulative regret (Eq. 2), cumulative
// fairness violation (Theorem 1's V), label budget spent, and the stream's
// current environment (the changing-environments signal a drift dashboard
// watches). Registration is idempotent, so the serving binary can register
// the same families at startup (exposing zero values before any run) and a
// later Run updates them in place.
type Metrics struct {
	tasks        *obs.Counter      // faction_online_tasks_total
	queries      *obs.Counter      // faction_online_queries_total
	budgetSpent  *obs.Gauge        // faction_online_budget_spent
	cumRegret    *obs.Gauge        // faction_online_cumulative_regret
	cumViolation *obs.Gauge        // faction_online_cumulative_violation
	lastAccuracy *obs.Gauge        // faction_online_last_accuracy
	lastDDP      *obs.Gauge        // faction_online_last_ddp
	lastEOD      *obs.Gauge        // faction_online_last_eod
	env          *obs.Gauge        // faction_online_env
	stageSeconds *obs.HistogramVec // faction_online_stage_seconds{stage}
}

// RegisterMetrics registers (or re-resolves) the online protocol's metric
// families on reg (obs.Default() when nil) and returns handles to them.
func RegisterMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &Metrics{
		tasks: reg.Counter("faction_online_tasks_total",
			"Tasks processed by the online protocol (Algorithm 1 iterations)."),
		queries: reg.Counter("faction_online_queries_total",
			"Labels bought from the oracle across all runs."),
		budgetSpent: reg.Gauge("faction_online_budget_spent",
			"Labels bought during the current protocol run."),
		cumRegret: reg.Gauge("faction_online_cumulative_regret",
			"Cumulative instantaneous-loss regret of the current run (Eq. 2; requires TrackRegret)."),
		cumViolation: reg.Gauge("faction_online_cumulative_violation",
			"Cumulative fairness violation of the current run (Theorem 1's V)."),
		lastAccuracy: reg.Gauge("faction_online_last_accuracy",
			"Pre-adaptation accuracy on the most recent task."),
		lastDDP: reg.Gauge("faction_online_last_ddp",
			"Demographic-parity gap on the most recent task."),
		lastEOD: reg.Gauge("faction_online_last_eod",
			"Equalized-odds gap on the most recent task."),
		env: reg.Gauge("faction_online_env",
			"Environment index of the most recent task (changes mark drift)."),
		stageSeconds: reg.HistogramVec("faction_online_stage_seconds",
			"Wall-clock time per protocol stage.", obs.DefBuckets, "stage"),
	}
}

// TrackHistory joins the protocol's trajectory gauges to an in-process
// metric-history sampler, so /metrics/history can serve the regret,
// violation and budget curves the paper plots (Figs. 2–3) straight from the
// serving process. Safe to call before or during a run; the sampler skips
// ticks while the gauges are still zero-valued only in the sense that it
// records the zeros — the curves simply start flat.
func (m *Metrics) TrackHistory(h *history.Sampler) {
	gauge := func(name string, g *obs.Gauge) {
		h.Track(name, func() (float64, bool) { return g.Value(), true })
	}
	gauge("online_cumulative_regret", m.cumRegret)
	gauge("online_cumulative_violation", m.cumViolation)
	gauge("online_budget_spent", m.budgetSpent)
	gauge("online_last_accuracy", m.lastAccuracy)
	gauge("online_last_ddp", m.lastDDP)
	gauge("online_env", m.env)
}

// observeTask folds one finished task record into the run-level instruments.
func (m *Metrics) observeTask(rec TaskRecord, budgetSpent int, cumRegret, cumViolation float64) {
	m.tasks.Inc()
	m.queries.Add(uint64(rec.Queries))
	m.budgetSpent.Set(float64(budgetSpent))
	m.cumRegret.Set(cumRegret)
	m.cumViolation.Set(cumViolation)
	m.lastAccuracy.Set(rec.Report.Accuracy)
	m.lastDDP.Set(rec.Report.DDP)
	m.lastEOD.Set(rec.Report.EOD)
	m.env.Set(float64(rec.Env))
}
