package online

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"faction/internal/active"
	"faction/internal/data"
	"faction/internal/faction"
	"faction/internal/fairness"
	"faction/internal/nn"
)

// tinyConfig keeps protocol runs fast in tests.
func tinyConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Budget = 20
	cfg.AcqSize = 10
	cfg.WarmStart = 30
	cfg.Epochs = 3
	cfg.Hidden = []int{16}
	return cfg
}

func tinyStream(seed int64) *data.Stream {
	return data.Stationary(data.StreamConfig{Seed: seed, SamplesPerTask: 80}, 3)
}

func TestRunProtocolAccounting(t *testing.T) {
	stream := tinyStream(1)
	spec := MethodSpec{Name: "Random", Strategy: active.Random{}}
	cfg := tinyConfig(2)
	res := MustRun(stream, spec, cfg)

	if len(res.Records) != 3 {
		t.Fatalf("records = %d, want one per task", len(res.Records))
	}
	// Warm start (30) + 3 tasks × budget 20 = 90 queries.
	if res.TotalQueries != 30+3*20 {
		t.Fatalf("total queries = %d, want 90", res.TotalQueries)
	}
	// First task's record includes warm start + budget.
	if res.Records[0].Queries != 30+20 {
		t.Fatalf("task0 queries = %d, want 50", res.Records[0].Queries)
	}
	for _, rec := range res.Records[1:] {
		if rec.Queries != 20 {
			t.Fatalf("task queries = %d, want 20", rec.Queries)
		}
	}
	for _, rec := range res.Records {
		r := rec.Report
		if r.Accuracy < 0 || r.Accuracy > 1 || r.DDP < 0 || r.EOD < 0 || r.MI < 0 {
			t.Fatalf("invalid report %+v", r)
		}
		if rec.Elapsed <= 0 {
			t.Fatal("elapsed not recorded")
		}
		if rec.InstLoss < 0 {
			t.Fatal("negative instantaneous loss")
		}
	}
}

func TestRunDoesNotMutateStream(t *testing.T) {
	stream := tinyStream(3)
	before := make([]int, len(stream.Tasks))
	for i, task := range stream.Tasks {
		before[i] = task.Pool.Len()
	}
	MustRun(stream, MethodSpec{Name: "Random", Strategy: active.Random{}}, tinyConfig(4))
	for i, task := range stream.Tasks {
		if task.Pool.Len() != before[i] {
			t.Fatalf("task %d pool shrank from %d to %d", i, before[i], task.Pool.Len())
		}
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	spec := FactionSpec(faction.Defaults())
	a := MustRun(tinyStream(5), spec, tinyConfig(6))
	b := MustRun(tinyStream(5), spec, tinyConfig(6))
	if len(a.Records) != len(b.Records) {
		t.Fatal("record count differs")
	}
	for i := range a.Records {
		if a.Records[i].Report != b.Records[i].Report || a.Records[i].Queries != b.Records[i].Queries {
			t.Fatalf("task %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestRunLearnsOverTasks(t *testing.T) {
	// On a stationary separable stream, accuracy on later tasks must beat the
	// warm-started first-task accuracy floor.
	stream := data.Stationary(data.StreamConfig{Seed: 7, SamplesPerTask: 120}, 5)
	cfg := tinyConfig(8)
	cfg.Epochs = 8
	res := MustRun(stream, MethodSpec{Name: "Entropy-AL", Strategy: active.EntropyAL{}}, cfg)
	last := res.Records[len(res.Records)-1].Report.Accuracy
	if last < 0.7 {
		t.Fatalf("final-task accuracy %.3f, expected the learner to learn (≥ 0.7)", last)
	}
}

func TestFairRegReducesUnfairness(t *testing.T) {
	// Same stream and selection; adding the Eq. 9 regularizer must reduce the
	// mean DDP. This is the "w/o fair reg" ablation in miniature.
	stream := data.NYSF(data.StreamConfig{Seed: 9, SamplesPerTask: 100})
	stream.Tasks = stream.Tasks[:6]
	cfg := tinyConfig(10)
	cfg.Epochs = 6

	noReg := MustRun(stream, MethodSpec{Name: "plain", Strategy: active.EntropyAL{}}, cfg)
	withReg := MustRun(stream, MethodSpec{
		Name:     "regularized",
		Strategy: active.EntropyAL{},
		Fair:     nn.FairConfig{Mu: 2.0, Eps: 0},
	}, cfg)

	if withReg.MeanReport().DDP >= noReg.MeanReport().DDP {
		t.Fatalf("fair reg DDP %.4f should beat plain %.4f",
			withReg.MeanReport().DDP, noReg.MeanReport().DDP)
	}
}

func TestTrackRegret(t *testing.T) {
	cfg := tinyConfig(11)
	cfg.TrackRegret = true
	cfg.OracleEpochs = 10
	res := MustRun(tinyStream(12), MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)
	for _, rec := range res.Records {
		if rec.Regret < 0 {
			t.Fatal("regret must be nonnegative")
		}
	}
	if res.CumulativeRegret() < 0 {
		t.Fatal("cumulative regret must be nonnegative")
	}
}

func TestMeanReportAndCumulatives(t *testing.T) {
	r := RunResult{Records: []TaskRecord{
		{Report: mkReport(0.8, 0.2), FairViolation: 1, Regret: 0.5},
		{Report: mkReport(0.6, 0.4), FairViolation: 2, Regret: 0.25},
	}}
	mean := r.MeanReport()
	if math.Abs(mean.Accuracy-0.7) > 1e-12 || math.Abs(mean.DDP-0.3) > 1e-12 {
		t.Fatalf("mean = %+v", mean)
	}
	if r.CumulativeViolation() != 3 || r.CumulativeRegret() != 0.75 {
		t.Fatal("cumulative sums wrong")
	}
	var empty RunResult
	if empty.MeanReport().Accuracy != 0 {
		t.Fatal("empty mean should be zero")
	}
}

func TestBudgetExceedsPool(t *testing.T) {
	stream := data.Stationary(data.StreamConfig{Seed: 13, SamplesPerTask: 25}, 2)
	cfg := tinyConfig(14)
	cfg.Budget = 100 // larger than the pool after warm start
	cfg.WarmStart = 10
	res := MustRun(stream, MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)
	// Task 0: warm 10 + all remaining 15; task 1: min(100, 25) = 25.
	if res.TotalQueries != 25+25 {
		t.Fatalf("total queries = %d, want 50 (pool-limited)", res.TotalQueries)
	}
}

func TestMethodsRegistry(t *testing.T) {
	ms := Methods(1)
	if len(ms) != 8 {
		t.Fatalf("methods = %d, want 8", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name] = true
		if m.Strategy == nil {
			t.Fatalf("%s has nil strategy", m.Name)
		}
	}
	for _, want := range MethodNames() {
		if !names[want] {
			t.Fatalf("missing method %q", want)
		}
	}
	// Only FACTION trains with fairness regularization.
	for _, m := range ms {
		if m.Name == "FACTION" && m.Fair.Mu == 0 {
			t.Fatal("FACTION must train with Mu > 0")
		}
		if m.Name != "FACTION" && m.Fair.Mu != 0 {
			t.Fatalf("%s should not be fairness-regularized", m.Name)
		}
	}
}

func TestMethodByName(t *testing.T) {
	for _, name := range append(MethodNames(),
		"FACTION w/o fair select", "FACTION w/o fair reg",
		"FACTION w/o fair select & fair reg", "Margin", "Coreset", "BALD") {
		m, err := MethodByName(name, 1)
		if err != nil || m.Name != name {
			t.Fatalf("MethodByName(%q) = %+v, %v", name, m, err)
		}
	}
	if _, err := MethodByName("nope", 1); err == nil {
		t.Fatal("expected error")
	}
	// Ablations' training config matches their names.
	noReg, _ := MethodByName("FACTION w/o fair reg", 1)
	if noReg.Fair.Mu != 0 {
		t.Fatal("w/o fair reg must train plain")
	}
	noSel, _ := MethodByName("FACTION w/o fair select", 1)
	if noSel.Fair.Mu == 0 {
		t.Fatal("w/o fair select must still regularize")
	}
}

func mkReport(acc, ddp float64) fairness.Report {
	return fairness.Report{Accuracy: acc, DDP: ddp}
}

// TestCounterfactualConsistency trains with and without the Eq. 9 fairness
// regularizer on the color-biased RC-MNIST analog and compares counterfactual
// flip rates (fraction of predictions that change when a sample's color — the
// sensitive attribute's causal footprint — is flipped). The fair model must
// rely less on color.
func TestCounterfactualConsistency(t *testing.T) {
	stream := data.RotatedColoredMNIST(data.StreamConfig{Seed: 21, SamplesPerTask: 150})
	union := data.NewDataset("union", stream.Dim, stream.Classes)
	for _, task := range stream.Tasks[:6] {
		union.Samples = append(union.Samples, task.Pool.Samples...)
	}
	last := stream.Tasks[5].Pool
	cf := data.NewDataset("cf", stream.Dim, stream.Classes)
	for _, smp := range last.Samples {
		cf.Append(stream.Counterfactual(smp))
	}

	flipRate := func(fair nn.FairConfig, seed int64) float64 {
		model := nn.NewClassifier(nn.Config{InputDim: stream.Dim, NumClasses: 2, Hidden: []int{32}, Seed: seed})
		rng := rand.New(rand.NewSource(seed))
		model.Train(union.Matrix(), union.Labels(), union.Sensitive(), nn.NewAdam(0.01), nn.TrainOpts{
			Epochs: 12, BatchSize: 32, Fair: fair,
		}, rng)
		pred := model.PredictClasses(last.Matrix())
		predCF := model.PredictClasses(cf.Matrix())
		return fairness.FlipRate(pred, predCF)
	}
	unfair := flipRate(nn.FairConfig{}, 23)
	fair := flipRate(nn.FairConfig{Mu: 2, Eps: 0}, 23)
	if fair >= unfair {
		t.Fatalf("fair model flip rate %.3f should be below unfair %.3f", fair, unfair)
	}
}

func TestRunEmptyStream(t *testing.T) {
	stream := &data.Stream{Name: "empty", Dim: 2, Classes: 2}
	res := MustRun(stream, MethodSpec{Name: "Random", Strategy: active.Random{}}, tinyConfig(50))
	if len(res.Records) != 0 || res.TotalQueries != 0 {
		t.Fatalf("empty stream: %+v", res)
	}
}

func TestRunZeroWarmStart(t *testing.T) {
	stream := tinyStream(51)
	cfg := tinyConfig(52)
	cfg.WarmStart = 0
	res := MustRun(stream, MethodSpec{Name: "Entropy-AL", Strategy: active.EntropyAL{}}, cfg)
	// Budget only: 3 tasks × 20.
	if res.TotalQueries != 60 {
		t.Fatalf("queries = %d, want 60", res.TotalQueries)
	}
}

func TestRunLinearModel(t *testing.T) {
	stream := tinyStream(53)
	cfg := tinyConfig(54)
	cfg.Linear = true
	cfg.SpectralNorm = false
	res := MustRun(stream, FactionSpec(faction.Defaults()), cfg)
	if len(res.Records) != 3 {
		t.Fatal("linear-model run incomplete")
	}
}

func TestRunSGDOptimizer(t *testing.T) {
	stream := tinyStream(55)
	cfg := tinyConfig(56)
	cfg.Optimizer = "sgd"
	res := MustRun(stream, MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)
	if len(res.Records) != 3 {
		t.Fatal("sgd run incomplete")
	}
}

func TestRunUnknownOptimizerError(t *testing.T) {
	stream := tinyStream(57)
	cfg := tinyConfig(58)
	cfg.Optimizer = "rmsprop"
	res, err := Run(stream, MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)
	if err == nil || !strings.Contains(err.Error(), `unknown optimizer "rmsprop"`) {
		t.Fatalf("err = %v, want unknown-optimizer validation error", err)
	}
	if len(res.Records) != 0 {
		t.Fatal("an invalid config must not produce records")
	}
	// MustRun surfaces the same failure as a panic for the experiment
	// drivers, whose configs are code-constructed.
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun should panic on an invalid config")
		}
	}()
	MustRun(stream, MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)
}

// TestRunWithDropoutModelAndBALD exercises the full protocol with a
// stochastic model and the BALD strategy.
func TestRunWithDropoutModelAndBALD(t *testing.T) {
	stream := tinyStream(59)
	cfg := tinyConfig(60)
	cfg.Hidden = []int{16}
	spec := MethodSpec{Name: "BALD", Strategy: active.BALD{Samples: 5}}
	// The runner builds the model; dropout must come from its config.
	cfg.DropoutRate = 0.2
	res := MustRun(stream, spec, cfg)
	if len(res.Records) != 3 {
		t.Fatal("BALD run incomplete")
	}
}

func TestTraceEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(61)
	cfg.Trace = &buf
	MustRun(tinyStream(62), MethodSpec{Name: "Random", Strategy: active.Random{}}, cfg)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("trace lines = %d, want one per task", len(lines))
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec["method"] != "Random" || rec["stream"] != "stationary" {
			t.Fatalf("line %d metadata: %v", i, rec)
		}
		if _, ok := rec["accuracy"].(float64); !ok {
			t.Fatalf("line %d missing accuracy", i)
		}
		if int(rec["task"].(float64)) != i {
			t.Fatalf("line %d task order", i)
		}
	}
}
