// Package online implements the Fair Active Online Learning protocol of
// Section IV-A / Algorithm 1: tasks arrive sequentially and unlabeled, the
// learner's performance is recorded with the previous parameters before any
// adaptation, and each task grants a label budget B spent in acquisition
// batches of size A chosen by a query strategy. Training between acquisition
// rounds uses the (optionally fairness-regularized) total loss of Eq. 9.
//
// The runner treats every method — FACTION, its ablations and the seven
// baselines — uniformly through a MethodSpec: a query strategy plus a
// training-time fairness configuration.
package online

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"faction/internal/active"
	"faction/internal/data"
	"faction/internal/fairness"
	"faction/internal/mat"
	"faction/internal/nn"
	"faction/internal/obs"
	"faction/internal/rngutil"
	"faction/internal/wal"
)

// MethodSpec pairs a query strategy with its training-time fairness
// regularization (zero for fairness-unaware methods).
type MethodSpec struct {
	Name     string
	Strategy active.Strategy
	Fair     nn.FairConfig
}

// Config controls one protocol run. Zero fields take the documented defaults.
type Config struct {
	// Budget is B, the per-task label budget (default 200, Section V-B).
	Budget int
	// AcqSize is A, the acquisition batch size per AL iteration (default 50).
	AcqSize int
	// WarmStart is the initial randomly-labeled sample count (default 100).
	WarmStart int
	// Epochs of training per AL iteration (default 15).
	Epochs int
	// BatchSize for minibatch training (default 32).
	BatchSize int
	// LR is the learning rate γ (default 0.01; constant, as in Section IV-F).
	LR float64
	// Hidden is the model architecture (default {64}; the paper uses {512}
	// — configure via the paper-scale experiment configs).
	Hidden []int
	// Linear forces pure logistic regression (no hidden layers), overriding
	// Hidden — the convex setting of Section IV-G's analysis.
	Linear bool
	// DropoutRate builds the protocol model with dropout after every hidden
	// activation (needed by the BALD strategy; 0 disables).
	DropoutRate float64
	// SpectralNorm enables spectral normalization (default on through
	// DefaultConfig; required by FACTION/DDU's density estimation).
	SpectralNorm bool
	// SpectralCoeff caps the per-layer Lipschitz constant (default 3).
	SpectralCoeff float64
	// Optimizer is "adam" (default) or "sgd".
	Optimizer string
	// WeightDecay applies decoupled L2 decay during training — the practical
	// analog of Theorem 1's bounded domain Θ. Zero disables it.
	WeightDecay float64
	// MaxGradNorm clips gradients when positive (default 5).
	MaxGradNorm float64
	// Seed derives every stochastic stream of the run.
	Seed int64
	// TrackRegret additionally fits a fully-supervised per-task oracle model
	// and records the instantaneous-loss regret of Eq. 2 (costly; used by the
	// theory experiments).
	TrackRegret bool
	// OracleEpochs trains the regret oracle (default 40).
	OracleEpochs int
	// Trace, when non-nil, receives one JSON line per task record as the run
	// progresses — the machine-readable audit log of the protocol. The first
	// write failure is surfaced on RunResult.TraceErr.
	Trace io.Writer
	// Metrics selects the registry the run's gauges and histograms register
	// into (obs.Default() when nil); see RegisterMetrics for the families.
	Metrics *obs.Registry
	// Tracer, when non-nil, records a span per task plus per-stage child
	// spans (eval → train → select → acquire → fairness). Export the ring
	// with Tracer.ExportJSONL.
	Tracer *obs.Tracer
	// WAL, when non-nil, receives one acquisition record per label purchase
	// (task, round, picked pool indices) appended before the oracle is
	// queried — a durable audit trail of where the label budget went. The
	// first append failure is surfaced on RunResult.WALErr; the run itself
	// continues, like tracing.
	WAL *wal.WAL
}

// DefaultConfig returns the CI-scale configuration used across experiments.
func DefaultConfig(seed int64) Config {
	return Config{
		Budget:        200,
		AcqSize:       50,
		WarmStart:     100,
		Epochs:        15,
		BatchSize:     32,
		LR:            0.01,
		Hidden:        []int{64},
		SpectralNorm:  true,
		SpectralCoeff: 3,
		Optimizer:     "adam",
		MaxGradNorm:   5,
		Seed:          seed,
	}
}

func (c *Config) setDefaults() {
	if c.Budget <= 0 {
		c.Budget = 200
	}
	if c.AcqSize <= 0 {
		c.AcqSize = 50
	}
	if c.WarmStart < 0 {
		c.WarmStart = 0
	}
	if c.Epochs <= 0 {
		c.Epochs = 15
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if len(c.Hidden) == 0 && !c.Linear {
		c.Hidden = []int{64}
	}
	if c.SpectralCoeff <= 0 {
		c.SpectralCoeff = 3
	}
	if c.Optimizer == "" {
		c.Optimizer = "adam"
	}
	if c.OracleEpochs <= 0 {
		c.OracleEpochs = 40
	}
}

// Validate reports configuration errors that would otherwise surface
// mid-run. Run calls it after defaulting; callers constructing configs from
// untrusted input (CLI flags, request bodies) can call it directly.
func (c *Config) Validate() error {
	switch c.Optimizer {
	case "", "adam", "sgd":
		return nil
	default:
		return fmt.Errorf("online: unknown optimizer %q (want %q or %q)", c.Optimizer, "adam", "sgd")
	}
}

// newOptimizer assumes a validated config; "sgd" selects SGD with momentum,
// anything else (the default "adam") selects Adam.
func (c *Config) newOptimizer() nn.Optimizer {
	if c.Optimizer == "sgd" {
		return nn.NewSGD(c.LR, 0.9, c.WeightDecay)
	}
	opt := nn.NewAdam(c.LR)
	opt.WeightDecay = c.WeightDecay
	return opt
}

// TaskRecord is the evaluation of one incoming task, taken with the
// parameters learned before the task (Algorithm 1 line 4), plus the
// adaptation bookkeeping for that task.
type TaskRecord struct {
	TaskID int
	Env    int
	Name   string
	// Report holds Accuracy/DDP/EOD/MI on the full incoming task.
	Report fairness.Report
	// Queries is the number of labels bought for this task.
	Queries int
	// TrainLoss is the final training loss of the task's last AL iteration.
	TrainLoss float64
	// FairViolation is ‖[v(D_t, θ_t)]₊‖ on the labeled pool after the task
	// (the summand of the cumulative violation V in Theorem 1).
	FairViolation float64
	// InstLoss is the instantaneous loss f_t(D_t^U, θ_{t-1}).
	InstLoss float64
	// Regret is InstLoss − f_t*(D_t^U) when Config.TrackRegret is set.
	Regret float64
	// Elapsed is the wall-clock time spent adapting to this task.
	Elapsed time.Duration
}

// RunResult is a full protocol run of one method over one stream.
type RunResult struct {
	Method       string
	Stream       string
	Records      []TaskRecord
	TotalQueries int
	Elapsed      time.Duration
	// TraceErr is the first error hit writing Config.Trace, if any. Tracing
	// never aborts a run, but a truncated audit log must not pass silently.
	TraceErr error `json:"-"`
	// WALErr is the first error appending an acquisition record to
	// Config.WAL, if any — same contract as TraceErr.
	WALErr error `json:"-"`
}

// MeanReport averages the per-task metrics across the run ("mean across all
// tasks", as in Table I).
func (r *RunResult) MeanReport() fairness.Report {
	var out fairness.Report
	if len(r.Records) == 0 {
		return out
	}
	for _, rec := range r.Records {
		out.Accuracy += rec.Report.Accuracy
		out.DDP += rec.Report.DDP
		out.EOD += rec.Report.EOD
		out.MI += rec.Report.MI
	}
	inv := 1 / float64(len(r.Records))
	out.Accuracy *= inv
	out.DDP *= inv
	out.EOD *= inv
	out.MI *= inv
	return out
}

// CumulativeRegret sums per-task regrets (Eq. 2).
func (r *RunResult) CumulativeRegret() float64 {
	total := 0.0
	for _, rec := range r.Records {
		total += rec.Regret
	}
	return total
}

// CumulativeViolation sums per-task fairness violations (Theorem 1's V).
func (r *RunResult) CumulativeViolation() float64 {
	total := 0.0
	for _, rec := range r.Records {
		total += rec.FairViolation
	}
	return total
}

// Run executes the full protocol of Algorithm 1 for one method on a stream.
// An invalid configuration (see Config.Validate) returns an error before any
// work happens.
func Run(stream *data.Stream, spec MethodSpec, cfg Config) (RunResult, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	start := time.Now()
	runRng := rngutil.Derive(cfg.Seed, "run", stream.Name, spec.Name)
	modelSeed := rngutil.DeriveSeed(cfg.Seed, "model", stream.Name, spec.Name)

	hidden := cfg.Hidden
	if cfg.Linear {
		hidden = nil
	}
	model := nn.NewClassifier(nn.Config{
		InputDim:      stream.Dim,
		NumClasses:    stream.Classes,
		Hidden:        hidden,
		SpectralNorm:  cfg.SpectralNorm,
		SpectralCoeff: cfg.SpectralCoeff,
		DropoutRate:   cfg.DropoutRate,
		Seed:          modelSeed,
	})
	opt := cfg.newOptimizer()
	oracle := &data.Oracle{}
	labeled := data.NewDataset("labeled", stream.Dim, stream.Classes)

	trainOpts := nn.TrainOpts{
		Epochs:      cfg.Epochs,
		BatchSize:   cfg.BatchSize,
		Fair:        spec.Fair,
		MaxGradNorm: cfg.MaxGradNorm,
	}

	// Instrumentation: run-level gauges plus per-stage timing histograms.
	// Stage children are resolved once so the loop's hot path is lock-free.
	metrics := RegisterMetrics(cfg.Metrics)
	stageEval := metrics.stageSeconds.With("eval")
	stageTrain := metrics.stageSeconds.With("train")
	stageSelect := metrics.stageSeconds.With("select")
	stageAcquire := metrics.stageSeconds.With("acquire")
	stageFairness := metrics.stageSeconds.With("fairness")
	runCtx := obs.WithTracer(context.Background(), cfg.Tracer)
	cumRegret, cumViolation := 0.0, 0.0

	result := RunResult{Method: spec.Name, Stream: stream.Name}
	// logAcquisition appends one durable audit record per label purchase,
	// before the oracle is queried — so even a crash mid-acquisition leaves
	// evidence of the spend. Failures are recorded once and never abort the
	// run (the record is audit, not state).
	logAcquisition := func(taskID, round int, picks []int) {
		if cfg.WAL == nil {
			return
		}
		p := make([]int64, len(picks))
		for i, v := range picks {
			p[i] = int64(v)
		}
		payload := wal.AppendAcquisition(nil, wal.Acquisition{Task: int64(taskID), Round: int64(round), Picks: p})
		if _, err := cfg.WAL.Append(payload); err != nil && result.WALErr == nil {
			result.WALErr = err
		}
	}
	for ti := range stream.Tasks {
		task := stream.Tasks[ti]
		pool := task.Pool.Clone() // the run consumes the pool
		queriesBefore := oracle.Queries()

		taskCtx, taskSpan := cfg.Tracer.StartSpan(runCtx, "online.task")
		taskSpan.SetAttr("task", task.ID)
		taskSpan.SetAttr("env", task.Env)
		taskSpan.SetAttr("method", spec.Name)

		// Warm start: random labels from the first task, then a first fit,
		// so every method enters the protocol with the same endowment
		// (Section V-A3).
		if ti == 0 && cfg.WarmStart > 0 {
			warm := cfg.WarmStart
			if warm > pool.Len() {
				warm = pool.Len()
			}
			_, warmSpan := cfg.Tracer.StartSpan(taskCtx, "online.warmstart")
			warmSpan.SetAttr("samples", warm)
			idx := rngutil.SampleWithoutReplacement(runRng, pool.Len(), warm)
			logAcquisition(task.ID, 0, idx)
			acquire(labeled, pool, idx, oracle)
			model.Train(labeled.Matrix(), labeled.Labels(), labeled.Sensitive(), opt, trainOpts, runRng)
			warmSpan.End()
		}

		rec := TaskRecord{TaskID: task.ID, Env: task.Env, Name: task.Name}

		// Record the performance of θ_{t-1} on the full incoming task
		// (ground truth used for evaluation only).
		evalStart := time.Now()
		_, evalSpan := cfg.Tracer.StartSpan(taskCtx, "online.eval")
		evalX := pool.Matrix()
		evalLogits := model.Logits(evalX)
		pred := make([]int, evalLogits.Rows)
		for i := range pred {
			pred[i] = argmaxRow(evalLogits, i)
		}
		rec.Report = fairness.Evaluate(pred, pool.Labels(), pool.Sensitive())
		instLoss, _ := nn.CrossEntropy(evalLogits, pool.Labels())
		rec.InstLoss = instLoss
		if cfg.TrackRegret {
			rec.Regret = instLoss - bestTaskLoss(pool, cfg, modelSeed+int64(ti))
			if rec.Regret < 0 {
				rec.Regret = 0
			}
		}
		evalSpan.SetAttr("accuracy", rec.Report.Accuracy)
		evalSpan.End()
		stageEval.Observe(time.Since(evalStart).Seconds())

		taskStart := time.Now()
		budget := cfg.Budget
		round := 0
		for budget > 0 && pool.Len() > 0 {
			round++
			// Train on everything labeled so far (Algorithm 1 lines 7–8).
			trainStart := time.Now()
			_, trainSpan := cfg.Tracer.StartSpan(taskCtx, "online.train")
			stats := model.Train(labeled.Matrix(), labeled.Labels(), labeled.Sensitive(), opt, trainOpts, runRng)
			trainSpan.End()
			stageTrain.Observe(time.Since(trainStart).Seconds())
			rec.TrainLoss = stats.Loss

			a := cfg.AcqSize
			if a > budget {
				a = budget
			}
			selectStart := time.Now()
			_, selectSpan := cfg.Tracer.StartSpan(taskCtx, "online.select")
			actx := &active.Context{Model: model, Labeled: labeled, Pool: pool, Rng: runRng}
			picks := spec.Strategy.SelectBatch(actx, a)
			selectSpan.SetAttr("picked", len(picks))
			selectSpan.End()
			stageSelect.Observe(time.Since(selectStart).Seconds())
			if len(picks) == 0 {
				break
			}
			acquireStart := time.Now()
			_, acquireSpan := cfg.Tracer.StartSpan(taskCtx, "online.acquire")
			logAcquisition(task.ID, round, picks)
			acquire(labeled, pool, picks, oracle)
			acquireSpan.End()
			stageAcquire.Observe(time.Since(acquireStart).Seconds())
			budget -= len(picks)
		}
		rec.Queries = oracle.Queries() - queriesBefore
		rec.Elapsed = time.Since(taskStart)

		// Fairness violation of the post-task parameters on the labeled pool.
		if labeled.Len() > 0 {
			fairStart := time.Now()
			_, fairSpan := cfg.Tracer.StartSpan(taskCtx, "online.fairness")
			logits := model.Logits(labeled.Matrix())
			v, _ := nn.FairPenalty(logits, labeled.Labels(), labeled.Sensitive(), spec.Fair.Mode)
			if v > 0 {
				rec.FairViolation = v
			} else {
				rec.FairViolation = -v
			}
			fairSpan.End()
			stageFairness.Observe(time.Since(fairStart).Seconds())
		}
		result.Records = append(result.Records, rec)
		cumRegret += rec.Regret
		cumViolation += rec.FairViolation
		metrics.observeTask(rec, oracle.Queries(), cumRegret, cumViolation)
		taskSpan.SetAttr("queries", rec.Queries)
		taskSpan.End()
		if cfg.Trace != nil {
			if err := writeTrace(cfg.Trace, spec.Name, stream.Name, rec); err != nil && result.TraceErr == nil {
				result.TraceErr = err
			}
		}
	}
	result.TotalQueries = oracle.Queries()
	result.Elapsed = time.Since(start)
	return result, nil
}

// MustRun is Run for code-constructed configurations known to be valid (the
// experiment drivers); it panics on a configuration error.
func MustRun(stream *data.Stream, spec MethodSpec, cfg Config) RunResult {
	res, err := Run(stream, spec, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// traceLine is the JSONL schema of Config.Trace.
type traceLine struct {
	Method        string  `json:"method"`
	Stream        string  `json:"stream"`
	Task          int     `json:"task"`
	Env           int     `json:"env"`
	Name          string  `json:"name"`
	Accuracy      float64 `json:"accuracy"`
	DDP           float64 `json:"ddp"`
	EOD           float64 `json:"eod"`
	MI            float64 `json:"mi"`
	Queries       int     `json:"queries"`
	TrainLoss     float64 `json:"trainLoss"`
	InstLoss      float64 `json:"instLoss"`
	Regret        float64 `json:"regret"`
	FairViolation float64 `json:"fairViolation"`
	ElapsedMs     float64 `json:"elapsedMs"`
}

// writeTrace emits one task record as a JSON line. Tracing never aborts a
// run — Run keeps going after a failure — but the first error is surfaced on
// RunResult.TraceErr so a truncated audit log is visible to the caller.
func writeTrace(w io.Writer, method, stream string, rec TaskRecord) error {
	line := traceLine{
		Method:        method,
		Stream:        stream,
		Task:          rec.TaskID,
		Env:           rec.Env,
		Name:          rec.Name,
		Accuracy:      rec.Report.Accuracy,
		DDP:           rec.Report.DDP,
		EOD:           rec.Report.EOD,
		MI:            rec.Report.MI,
		Queries:       rec.Queries,
		TrainLoss:     rec.TrainLoss,
		InstLoss:      rec.InstLoss,
		Regret:        rec.Regret,
		FairViolation: rec.FairViolation,
		ElapsedMs:     float64(rec.Elapsed.Microseconds()) / 1000,
	}
	raw, err := json.Marshal(line)
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// acquire reveals the labels of pool[idx...] through the oracle and moves the
// samples into the labeled set. Indices are processed in descending order so
// the pool's swap-removal keeps remaining indices valid.
func acquire(labeled, pool *data.Dataset, idx []int, oracle *data.Oracle) {
	sorted := append([]int(nil), idx...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	for _, i := range sorted {
		s := pool.Samples[i]
		s.Y = oracle.Label(&pool.Samples[i]) // label revealed and charged
		labeled.Append(s)
		pool.Remove(i)
	}
}

// argmaxRow returns the index of the largest value in row i of logits. It
// takes the concrete *mat.Dense — the only logits type in the codebase — so
// the per-row call in the eval loop needs no interface dispatch.
func argmaxRow(logits *mat.Dense, i int) int {
	row := logits.Row(i)
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// bestTaskLoss fits a fully supervised model on the task (labels visible to
// the loss only, per the regret definition of Eq. 2) and returns its loss —
// the f_t* reference of the regret.
func bestTaskLoss(pool *data.Dataset, cfg Config, seed int64) float64 {
	hidden := cfg.Hidden
	if cfg.Linear {
		hidden = nil
	}
	oracleModel := nn.NewClassifier(nn.Config{
		InputDim:      pool.Dim,
		NumClasses:    pool.Classes,
		Hidden:        hidden,
		SpectralNorm:  cfg.SpectralNorm,
		SpectralCoeff: cfg.SpectralCoeff,
		Seed:          seed,
	})
	rng := rand.New(rand.NewSource(seed))
	oracleModel.Train(pool.Matrix(), pool.Labels(), nil, nn.NewAdam(cfg.LR), nn.TrainOpts{
		Epochs:    cfg.OracleEpochs,
		BatchSize: cfg.BatchSize,
	}, rng)
	loss, _ := nn.CrossEntropy(oracleModel.Logits(pool.Matrix()), pool.Labels())
	return loss
}
