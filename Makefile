GO ?= go

.PHONY: build test race vet check bench-smoke bench-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with real concurrency: the HTTP serving layer, the
# request-coalescing micro-batcher, the online protocol runner, the
# snapshot/drain helpers, the write-ahead log (group-commit appenders racing
# rotation, replay and pruning), the network whose inference path must stay
# read-only, the sharded compute kernels in mat/gda (worker pool + parallel
# ScoreBatch), and the metrics registry whose hot paths are lock-free atomics
# scraped concurrently — ./internal/obs/... recursively includes the
# metric-history sampler and SLO burn-rate engine (tickers racing manual
# SampleNow/Evaluate and the HTTP snapshots). ./internal/fleet/... is the
# multi-replica router: the proxy hot path, probe loop and reconciler all
# share per-replica atomics.
race:
	$(GO) test -race ./internal/server/... ./internal/batching/... ./internal/online/... ./internal/resilience/... ./internal/wal/... ./internal/nn/... ./internal/mat/... ./internal/gda/... ./internal/obs/... ./internal/fleet/...

vet:
	$(GO) vet ./...

# bench-smoke runs every benchmark for exactly one iteration: a cheap guard
# that the benchmark harness never rots (this includes the observability
# benchmarks: history SampleNow, SLO Evaluate, histogram quantile). Record
# real numbers with `faction-bench -kernel results/BENCH_kernel.json` /
# `-alloc` / `-serve` / `-wal` / `-obs`.
bench-smoke:
	$(GO) test -bench . -benchtime=1x ./...

# bench-gate re-runs the kernel, read-path allocation and observability
# suites and compares them against the committed baselines in results/. It fails only on a >2x
# ns/op regression (machine variance headroom) or on ANY allocation appearing
# on a path whose baseline is pinned at zero allocs/op. Refresh the baselines
# with `faction-bench -kernel ...` / `-alloc ...` / `-obs ...` in the same
# change that knowingly shifts them.
bench-gate:
	$(GO) run ./cmd/faction-bench -gate results

check: vet build test race
