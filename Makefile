GO ?= go

.PHONY: build test race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with real concurrency: the HTTP serving layer, the
# online protocol runner, the snapshot/drain helpers, and the network whose
# inference path must stay read-only.
race:
	$(GO) test -race ./internal/server/... ./internal/online/... ./internal/resilience/... ./internal/nn/...

vet:
	$(GO) vet ./...

check: vet build test race
