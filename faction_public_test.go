package faction_test

import (
	"bytes"
	"testing"

	"faction"
)

// TestPublicAPIQuickstart exercises the facade end to end, mirroring the
// package documentation example.
func TestPublicAPIQuickstart(t *testing.T) {
	stream, err := faction.NewStream("rcmnist", faction.StreamConfig{Seed: 1, SamplesPerTask: 60})
	if err != nil {
		t.Fatal(err)
	}
	cfg := faction.DefaultRunConfig(1)
	cfg.Budget = 20
	cfg.AcqSize = 10
	cfg.WarmStart = 20
	cfg.Epochs = 3
	cfg.Hidden = []int{16}
	spec := faction.FactionMethod(faction.DefaultOptions())
	res, err := faction.Run(stream, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != stream.NumTasks() {
		t.Fatalf("records = %d, want %d", len(res.Records), stream.NumTasks())
	}
	if res.TotalQueries == 0 {
		t.Fatal("no labels were bought")
	}
}

func TestPublicAPIMethods(t *testing.T) {
	if len(faction.Methods(1)) != 8 {
		t.Fatal("expected 8 methods")
	}
	if len(faction.MethodNames()) != 8 {
		t.Fatal("expected 8 names")
	}
	if _, err := faction.MethodByName("FACTION", 1); err != nil {
		t.Fatal(err)
	}
	if len(faction.StreamNames()) != 5 {
		t.Fatal("expected 5 streams")
	}
}

func TestPublicAPIFairnessMetrics(t *testing.T) {
	pred := []int{1, 1, 0, 0}
	y := []int{1, 0, 1, 0}
	s := []int{1, 1, -1, -1}
	r := faction.Evaluate(pred, y, s)
	if r.DDP != faction.DDP(pred, s) || r.EOD != faction.EOD(pred, y, s) || r.MI != faction.MI(pred, s) {
		t.Fatal("Evaluate disagrees with individual metrics")
	}
}

func TestPublicAPIDensity(t *testing.T) {
	x := faction.NewMatrix(8, 2)
	rng := faction.NewRand(2)
	y := make([]int, 8)
	s := make([]int, 8)
	for i := 0; i < 8; i++ {
		y[i] = i % 2
		s[i] = 2*(i/4%2) - 1
		x.Set(i, 0, rng.NormFloat64()+float64(y[i])*4)
		x.Set(i, 1, rng.NormFloat64()+float64(s[i]))
	}
	est, err := faction.FitDensity(x, y, s, 2, []int{-1, 1}, faction.DensityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if est.NumComponents() == 0 {
		t.Fatal("no components fitted")
	}
}

func TestPublicAPIClassifier(t *testing.T) {
	c := faction.NewClassifier(faction.ClassifierConfig{InputDim: 3, NumClasses: 2, Hidden: []int{8}, Seed: 1})
	if c.FeatureDim() != 8 {
		t.Fatal("feature dim")
	}
	st := faction.StationaryStream(faction.StreamConfig{Seed: 3, SamplesPerTask: 30}, 2)
	if st.NumTasks() != 2 {
		t.Fatal("stationary stream")
	}
}

func TestPublicAPIExtensions(t *testing.T) {
	// Multi-group metrics.
	pred := []int{1, 0, 1}
	s3 := []int{0, 1, 2}
	if faction.DDPMulti(pred, s3) < 0 || faction.MIMulti(pred, s3) < 0 {
		t.Fatal("multi-group metrics")
	}
	if faction.FlipRate([]int{1, 0}, []int{1, 1}) != 0.5 {
		t.Fatal("flip rate")
	}
	// Multi-group stream + counterfactuals on a benchmark stream.
	mg := faction.MultiGroupStream(faction.StreamConfig{Seed: 1, SamplesPerTask: 30}, 3, 2, 0.2)
	if mg.NumTasks() != 2 {
		t.Fatal("multi-group stream")
	}
	st, err := faction.NewStream("rcmnist", faction.StreamConfig{Seed: 1, SamplesPerTask: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st.Counterfactual == nil {
		t.Fatal("counterfactual missing")
	}
	// Streaming selector + drift detector.
	sel := faction.NewStreamSelector(1, 3, 0)
	rng := faction.NewRand(2)
	taken := 0
	for i := 0; i < 100; i++ {
		if sel.Offer(rng, rng.Float64()) {
			taken++
		}
	}
	if taken != 3 {
		t.Fatalf("selector bought %d, want 3", taken)
	}
	det := faction.NewDriftDetector(faction.DriftConfig{})
	for i := 0; i < 6; i++ {
		det.Observe(100)
	}
	if !det.Observe(0).Shift {
		t.Fatal("drift detector missed an obvious shift")
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	c := faction.NewClassifier(faction.ClassifierConfig{InputDim: 2, NumClasses: 2, Hidden: []int{4}, Seed: 3})
	var buf bytes.Buffer
	if err := faction.SaveClassifier(&buf, c); err != nil {
		t.Fatal(err)
	}
	loaded, err := faction.LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := faction.NewMatrix(1, 2)
	x.Set(0, 0, 1)
	if loaded.Logits(x).At(0, 0) != c.Logits(x).At(0, 0) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestPublicAPICSV(t *testing.T) {
	st, err := faction.NewStream("ffhq", faction.StreamConfig{Seed: 4, SamplesPerTask: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := faction.WriteStreamCSV(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := faction.ReadStreamCSV(&buf, "ffhq2")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != st.NumTasks() {
		t.Fatal("csv roundtrip")
	}
}

func TestPublicAPIThresholds(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.8, 0.2}
	y := []int{1, 0, 1, 0}
	s := []int{1, 1, -1, -1}
	g, rep := faction.FitThresholds(scores, y, s, 0.05)
	if rep.Accuracy != 1 {
		t.Fatalf("accuracy = %g", rep.Accuracy)
	}
	pred := g.Apply(scores, s)
	if len(pred) != 4 {
		t.Fatal("apply")
	}
}
